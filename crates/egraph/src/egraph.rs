//! The e-graph data structure with deferred rebuilding and class analyses.

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::explain::{Justification, Proof, ProofGraph, ProofStep};
use crate::node::{ENode, RecExpr};
use crate::symbol::Symbol;
use crate::unionfind::{Id, UnionFind};

/// Per-e-class semilattice data, computed bottom-up and merged on union.
///
/// This mirrors `egg::Analysis`. The checker uses it to attach tensor shapes
/// and const-folded scalar values to classes, which lemma conditions consult.
pub trait Analysis: Sized + 'static {
    /// The data attached to each e-class.
    type Data: Clone + PartialEq + fmt::Debug;

    /// Computes the data for a freshly added node from its children's data.
    fn make(egraph: &EGraph<Self>, enode: &ENode) -> Self::Data;

    /// Merges `b` into `a` when two classes are unioned.
    ///
    /// Returns `(a_changed, b_changed)`: whether the merged value differs
    /// from the original `a` (resp. `b`). Changed classes have their parents
    /// re-analyzed during rebuild.
    fn merge(a: &mut Self::Data, b: Self::Data) -> (bool, bool);

    /// Optional hook run after a class's data is created or updated, with
    /// mutable access to the e-graph (e.g. to materialize a const-folded
    /// scalar node).
    fn modify(_egraph: &mut EGraph<Self>, _id: Id) {}
}

/// The trivial analysis: no data.
impl Analysis for () {
    type Data = ();
    fn make(_egraph: &EGraph<Self>, _enode: &ENode) {}
    fn merge(_a: &mut (), _b: ()) -> (bool, bool) {
        (false, false)
    }
}

/// An equivalence class of e-nodes.
#[derive(Debug, Clone)]
pub struct EClass<D> {
    /// Canonical id of this class.
    pub id: Id,
    /// The nodes in this class (children canonical as of the last rebuild).
    pub nodes: Vec<ENode>,
    /// The analysis data.
    pub data: D,
    /// Parent nodes: `(node, class-of-node)` pairs that reference this class.
    pub(crate) parents: Vec<(ENode, Id)>,
}

impl<D> EClass<D> {
    /// Iterates over the nodes in this class.
    pub fn iter(&self) -> impl Iterator<Item = &ENode> {
        self.nodes.iter()
    }

    /// Number of nodes in this class.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the class holds no nodes (never the case after `add`).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// A congruence-closed e-graph.
///
/// Follows the `egg` design: adds are hash-consed through `memo`; unions are
/// recorded in a union-find and invariants are restored in batch by
/// [`EGraph::rebuild`].
///
/// # Examples
///
/// ```
/// use entangle_egraph::{EGraph, ENode};
///
/// let mut eg = EGraph::<()>::default();
/// let x = eg.add(ENode::leaf("x"));
/// let y = eg.add(ENode::leaf("y"));
/// let fx = eg.add(ENode::op("f", vec![x]));
/// let fy = eg.add(ENode::op("f", vec![y]));
/// assert_ne!(eg.find(fx), eg.find(fy));
/// eg.union(x, y);
/// eg.rebuild();
/// // Congruence: x ≡ y ⇒ f(x) ≡ f(y).
/// assert_eq!(eg.find(fx), eg.find(fy));
/// ```
pub struct EGraph<A: Analysis> {
    unionfind: UnionFind,
    memo: HashMap<ENode, Id>,
    classes: HashMap<Id, EClass<A::Data>>,
    /// Classes whose parents need congruence repair.
    pending: Vec<Id>,
    /// Classes whose data changed and whose parents need re-analysis.
    analysis_pending: Vec<Id>,
    /// Monotonic counter of successful (state-changing) unions.
    union_count: usize,
    /// Operator symbols ever added (presence index for search prefiltering;
    /// never shrinks, which only costs precision, not correctness).
    op_index: HashSet<Symbol>,
    /// Per-symbol class index: for every operator symbol, the ids of the
    /// classes created holding a node with that head symbol. Entries are
    /// appended at class creation and never removed; queries canonicalize
    /// through the union-find (see [`EGraph::classes_with_op`]), so stale
    /// ids only cost a `find` each, not correctness. This is the e-matching
    /// fast path: rule search visits only classes that can contain the
    /// pattern's head symbol.
    sym_classes: HashMap<Symbol, Vec<Id>>,
    /// Why unions happened (the proof graph behind [`EGraph::explain`] and
    /// [`EGraph::explain_equivalence`]).
    proof: ProofGraph,
    /// The exact node each id was created with (children as passed), making
    /// every id *term faithful*: [`EGraph::term_of`] reconstructs the
    /// literal term a caller built. Indexed by `Id`.
    orig: Vec<ENode>,
    /// Node form → a term-faithful id carrying exactly that form. Unlike
    /// `memo` (which only holds currently-canonical forms) this index never
    /// drops entries; it dedupes the alias ids that bridge uncanonical
    /// forms to their class.
    orig_memo: HashMap<ENode, Id>,
    /// User context available to analyses and conditions.
    pub analysis: A,
}

impl<A: Analysis + Default> Default for EGraph<A> {
    fn default() -> Self {
        Self::with_analysis(A::default())
    }
}

impl<A: Analysis> EGraph<A> {
    /// Creates an empty e-graph with the given analysis context.
    pub fn with_analysis(analysis: A) -> Self {
        EGraph {
            unionfind: UnionFind::default(),
            memo: HashMap::new(),
            classes: HashMap::new(),
            pending: Vec::new(),
            analysis_pending: Vec::new(),
            union_count: 0,
            op_index: HashSet::new(),
            sym_classes: HashMap::new(),
            proof: ProofGraph::default(),
            orig: Vec::new(),
            orig_memo: HashMap::new(),
            analysis,
        }
    }

    /// Total number of e-nodes across all classes.
    pub fn total_nodes(&self) -> usize {
        self.classes.values().map(|c| c.nodes.len()).sum()
    }

    /// Number of canonical e-classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Entries in the hash-cons memo (canonical-form e-nodes). Tracked by
    /// the saturation telemetry as a proxy for deduplication pressure.
    pub fn memo_size(&self) -> usize {
        self.memo.len()
    }

    /// Count of state-changing unions performed so far; useful for
    /// saturation detection.
    pub fn union_count(&self) -> usize {
        self.union_count
    }

    /// `true` if any non-leaf node with this operator symbol was ever added
    /// — a cheap presence test letting rule search skip inapplicable rules.
    pub fn has_op(&self, sym: Symbol) -> bool {
        self.op_index.contains(&sym)
    }

    /// The canonical id of `id`.
    pub fn find(&self, id: Id) -> Id {
        self.unionfind.find_immutable(id)
    }

    /// Iterates over canonical classes.
    pub fn classes(&self) -> impl Iterator<Item = &EClass<A::Data>> {
        self.classes.values()
    }

    /// Canonical class ids (snapshot), sorted for deterministic iteration.
    ///
    /// The sort matters: pattern search and extraction visit classes in this
    /// order, and tie-breaks (equal-cost extractions, proof-edge insertion
    /// order) inherit it. Hash-map order would make runs irreproducible.
    pub fn class_ids(&self) -> Vec<Id> {
        let mut ids: Vec<Id> = self.classes.keys().copied().collect();
        ids.sort();
        ids
    }

    /// Canonical ids of classes containing at least one node with head
    /// symbol `sym`, sorted and deduplicated — the e-matching fast path.
    ///
    /// Every node enters the e-graph through [`EGraph::add`], which indexes
    /// the freshly created class under the node's symbol; unions only merge
    /// classes, so canonicalizing the recorded ids through the union-find
    /// covers every class that currently holds such a node.
    pub fn classes_with_op(&self, sym: Symbol) -> Vec<Id> {
        let mut ids: Vec<Id> = self
            .sym_classes
            .get(&sym)
            .map(|v| {
                v.iter()
                    .map(|&id| self.find(id))
                    .filter(|id| self.classes.contains_key(id))
                    .collect()
            })
            .unwrap_or_default();
        ids.sort();
        ids.dedup();
        ids
    }

    /// Adds a node (hash-consed) and returns a *term-faithful* id: the
    /// returned id's recorded term ([`EGraph::term_of`]) is exactly the
    /// node passed, with each child expanded to its own recorded term.
    /// When the node's children are not canonical (or hash-consing lands
    /// on a class whose representative differs), a fresh alias id is
    /// minted and bridged to the class by a congruence proof edge, so
    /// explanations can start and end at literal caller-built terms.
    pub fn add(&mut self, enode: ENode) -> Id {
        let canonical = enode.map_children(|c| self.find(c));
        if let Some(&id) = self.memo.get(&canonical) {
            debug_assert_eq!(
                self.orig[id.index()],
                canonical,
                "memo values are term-faithful"
            );
            return self.faithful(enode, &canonical, id);
        }
        let id = self.unionfind.make_set();
        self.proof.make_set();
        self.orig.push(canonical.clone());
        self.orig_memo.entry(canonical.clone()).or_insert(id);
        if let ENode::Op(sym, ch) = &canonical {
            if !ch.is_empty() {
                self.op_index.insert(*sym);
            }
            self.sym_classes.entry(*sym).or_default().push(id);
        }
        let data = A::make(self, &canonical);
        let class = EClass {
            id,
            nodes: vec![canonical.clone()],
            data,
            parents: Vec::new(),
        };
        for &child in canonical.children() {
            self.classes
                .get_mut(&child)
                .expect("child class must exist")
                .parents
                .push((canonical.clone(), id));
        }
        self.classes.insert(id, class);
        self.memo.insert(canonical.clone(), id);
        A::modify(self, id);
        self.faithful(enode, &canonical, id)
    }

    /// Returns a term-faithful id for `enode` given `id`, faithful for its
    /// canonicalization `canonical`.
    fn faithful(&mut self, enode: ENode, canonical: &ENode, id: Id) -> Id {
        if enode == *canonical {
            id
        } else {
            self.alias(enode, id)
        }
    }

    /// Mints (or reuses) an id whose recorded term is exactly `node`,
    /// equal to `target` by a congruence proof edge. The alias joins
    /// `target`'s union-find class but owns no [`EClass`]; it exists only
    /// as a proof endpoint.
    fn alias(&mut self, node: ENode, target: Id) -> Id {
        if let Some(&a) = self.orig_memo.get(&node) {
            if self.find(a) == self.find(target) {
                return a;
            }
        }
        let a = self.unionfind.make_set();
        self.proof.make_set();
        self.orig.push(node.clone());
        self.proof.union(target, a, Justification::Congruence);
        self.unionfind.union(target, a);
        self.orig_memo.insert(node, a);
        a
    }

    /// Adds every node of a [`RecExpr`], returning the root's class.
    pub fn add_expr(&mut self, expr: &RecExpr) -> Id {
        let mut ids: Vec<Id> = Vec::with_capacity(expr.len());
        for node in expr.nodes() {
            let mapped = node.map_children(|c| ids[c.index()]);
            ids.push(self.add(mapped));
        }
        *ids.last().expect("add_expr on empty RecExpr")
    }

    /// Looks up a node without inserting it.
    ///
    /// Children are canonicalized first. Returns the canonical class if the
    /// node is already represented.
    pub fn lookup(&self, enode: &ENode) -> Option<Id> {
        let canonical = enode.map_children(|c| self.find(c));
        self.memo.get(&canonical).map(|&id| self.find(id))
    }

    /// Looks up a whole expression without inserting; `None` if any node is
    /// absent. Used by *constrained lemmas* (§4.3.2): a generative rewrite
    /// only fires when its target already exists.
    pub fn lookup_expr(&self, expr: &RecExpr) -> Option<Id> {
        let mut ids: Vec<Id> = Vec::with_capacity(expr.len());
        for node in expr.nodes() {
            let mapped = node.map_children(|c| ids[c.index()]);
            ids.push(self.lookup(&mapped)?);
        }
        ids.last().copied()
    }

    /// Accesses a class by (possibly non-canonical) id.
    ///
    /// # Panics
    ///
    /// Panics if the id was never created by this e-graph.
    pub fn class(&self, id: Id) -> &EClass<A::Data> {
        let id = self.find(id);
        self.classes.get(&id).expect("class must exist")
    }

    /// Mutable access to a class's data.
    pub fn data_mut(&mut self, id: Id) -> &mut A::Data {
        let id = self.find(id);
        &mut self.classes.get_mut(&id).expect("class must exist").data
    }

    /// The parent nodes of a class: every e-node (in some class) that has
    /// this class as a child. Used by constrained generative lemmas
    /// (§4.3.2) that must only fire when their target subterms already
    /// exist.
    pub fn parent_nodes(&self, id: Id) -> Vec<ENode> {
        self.class(id)
            .parents
            .iter()
            .map(|(n, _)| n.clone())
            .collect()
    }

    /// Unions two classes; returns `(root, changed)`.
    ///
    /// Invariants are *not* restored until [`EGraph::rebuild`] is called.
    pub fn union(&mut self, a: Id, b: Id) -> (Id, bool) {
        self.union_with(a, b, Justification::Given("union".to_owned()))
    }

    /// Like [`EGraph::union`], recording why the classes are equal; the
    /// justification is replayed by [`EGraph::explain`] and
    /// [`EGraph::explain_equivalence`]. The proof edge connects the ids
    /// *as passed* (term-faithful endpoints), not their class roots.
    pub fn union_with(&mut self, a: Id, b: Id, why: Justification) -> (Id, bool) {
        let (oa, ob) = (a, b);
        let a = self.find(a);
        let b = self.find(b);
        if a == b {
            return (a, false);
        }
        self.proof.union(oa, ob, why);
        self.union_count += 1;
        // Union by parent-list size: keep the bigger class as root so fewer
        // parent links need to move.
        let (root, other) = {
            let pa = self.classes[&a].parents.len();
            let pb = self.classes[&b].parents.len();
            if pa >= pb {
                (a, b)
            } else {
                (b, a)
            }
        };
        self.unionfind.union(root, other);
        let merged = self.classes.remove(&other).expect("class must exist");
        let class = self.classes.get_mut(&root).expect("class must exist");
        class.id = root;
        class.nodes.extend(merged.nodes);
        class.parents.extend(merged.parents);
        let (root_changed, _other_changed) = A::merge(&mut class.data, merged.data);
        self.pending.push(root);
        if root_changed {
            self.analysis_pending.push(root);
        }
        A::modify(self, root);
        (root, true)
    }

    /// Restores congruence closure and re-propagates analysis data.
    ///
    /// Must be called after a batch of unions before searching again; the
    /// [`crate::Runner`] does this automatically once per iteration.
    pub fn rebuild(&mut self) {
        loop {
            let mut made_progress = false;
            while let Some(id) = self.pending.pop() {
                made_progress = true;
                self.repair(id);
            }
            while let Some(id) = self.analysis_pending.pop() {
                made_progress = true;
                self.repair_analysis(id);
            }
            if !made_progress {
                break;
            }
        }
        debug_assert!(self.check_memo_canonical());
    }

    fn repair(&mut self, id: Id) {
        let id = self.find(id);
        let Some(class) = self.classes.get_mut(&id) else {
            return; // merged away by a union triggered from repair
        };
        let parents = std::mem::take(&mut class.parents);
        // First pass: remove stale memo entries.
        for (pnode, _) in &parents {
            self.memo.remove(pnode);
        }
        // Second pass: re-canonicalize, detect congruent duplicates. The
        // stored `pid` is the term-faithful id recorded for `pnode`
        // (`orig[pid] == pnode`), so every congruence union here connects
        // two same-operator nodes whose children were already equivalent —
        // exactly what a proof checker can validate. `seen` maps each
        // canonical form to a faithful id for that form, preserving the
        // memo invariant that memo values are term-faithful.
        let mut seen: HashMap<ENode, Id> = HashMap::with_capacity(parents.len());
        for (pnode, pid) in parents {
            let canonical = pnode.map_children(|c| self.find(c));
            if let Some(&existing) = seen.get(&canonical) {
                if self.find(existing) != self.find(pid) {
                    self.union_with(existing, pid, Justification::Congruence);
                }
            } else if let Some(&memo_id) = self.memo.get(&canonical) {
                debug_assert_eq!(
                    self.orig[memo_id.index()],
                    canonical,
                    "memo values are term-faithful"
                );
                if self.find(memo_id) != self.find(pid) {
                    self.union_with(memo_id, pid, Justification::Congruence);
                }
                seen.insert(canonical, memo_id);
            } else if pnode == canonical {
                self.memo.insert(canonical.clone(), pid);
                seen.insert(canonical, pid);
            } else {
                // `pid`'s exact form went stale; mint a faithful id for
                // the canonical form, bridged by a congruence edge.
                let fid = self.alias(canonical.clone(), pid);
                self.memo.insert(canonical.clone(), fid);
                seen.insert(canonical, fid);
            }
        }
        let id = self.find(id);
        if let Some(class) = self.classes.get_mut(&id) {
            let existing = std::mem::take(&mut class.parents);
            let mut merged: Vec<(ENode, Id)> = existing;
            // Sort the hash-map entries before merging: the parent-list
            // order feeds later repairs (and through them proof-edge
            // insertion order), so it must not depend on hasher state.
            let mut seen: Vec<(ENode, Id)> = seen.into_iter().collect();
            seen.sort();
            for (n, p) in seen {
                if !merged.iter().any(|(mn, _)| *mn == n) {
                    merged.push((n, p));
                }
            }
            class.parents = merged;
            // Dedup the class's own nodes under the new canonicalization.
            let canon_nodes: HashSet<ENode> = class
                .nodes
                .iter()
                .map(|n| n.map_children(|c| self.unionfind.find_immutable(c)))
                .collect();
            let class = self.classes.get_mut(&id).expect("class must exist");
            class.nodes = canon_nodes.into_iter().collect();
            class.nodes.sort();
        }
    }

    fn repair_analysis(&mut self, id: Id) {
        let id = self.find(id);
        let Some(class) = self.classes.get(&id) else {
            return;
        };
        let parents: Vec<(ENode, Id)> = class.parents.clone();
        for (pnode, pid) in parents {
            let pid = self.find(pid);
            let new_data = A::make(self, &pnode.map_children(|c| self.find(c)));
            let class = self.classes.get_mut(&pid).expect("class must exist");
            let (changed, _) = A::merge(&mut class.data, new_data);
            if changed {
                self.analysis_pending.push(pid);
                A::modify(self, pid);
            }
        }
    }

    /// Debug invariant (hashcons completeness): the canonical form of every
    /// node in every class resolves through the memo back to that class.
    ///
    /// Note the memo may retain *stale* keys (non-canonical forms left over
    /// from earlier unions); those are unreachable — every lookup
    /// canonicalizes its query first — and therefore harmless. This mirrors
    /// egg's behaviour.
    fn check_memo_canonical(&self) -> bool {
        self.classes.iter().all(|(id, class)| {
            class.nodes.iter().all(|n| {
                let canon = n.map_children(|c| self.find(c));
                self.memo.get(&canon).map(|&m| self.find(m)) == Some(*id)
            })
        })
    }

    /// The literal term recorded for `id`: each id remembers the exact
    /// node it was created with, so this reconstructs what the caller
    /// built, independent of later unions. Shared subterms share slots.
    pub fn term_of(&self, id: Id) -> RecExpr {
        let mut out = RecExpr::default();
        let mut slots: HashMap<Id, Id> = HashMap::new();
        self.term_into(id, &mut out, &mut slots);
        out
    }

    fn term_into(&self, id: Id, out: &mut RecExpr, slots: &mut HashMap<Id, Id>) -> Id {
        if let Some(&slot) = slots.get(&id) {
            return slot;
        }
        let node = self.orig[id.index()].map_children(|c| self.term_into(c, out, slots));
        let slot = out.add(node);
        slots.insert(id, slot);
        slot
    }

    /// Explains why two ids are equivalent: the chain of union
    /// justifications (lemma names, congruence steps, caller-given facts)
    /// connecting them. Returns `None` when the ids were never proven
    /// equal. For full term-level proofs see
    /// [`EGraph::explain_equivalence`].
    ///
    /// # Examples
    ///
    /// ```
    /// use entangle_egraph::{EGraph, Justification, RecExpr, Rewrite, Runner};
    ///
    /// let rw: Rewrite<()> = Rewrite::parse("add-zero", "(add ?x 0)", "?x").unwrap();
    /// let mut eg = EGraph::<()>::default();
    /// let l = eg.add_expr(&"(add q 0)".parse::<RecExpr>().unwrap());
    /// let r = eg.add_expr(&"q".parse::<RecExpr>().unwrap());
    /// let mut runner = Runner::new(eg);
    /// runner.run(&[rw]);
    /// let reasons = runner.egraph.explain(l, r).unwrap();
    /// assert!(reasons
    ///     .iter()
    ///     .any(|j| matches!(j, Justification::Rule { name, .. } if name == "add-zero")));
    /// ```
    pub fn explain(&self, a: Id, b: Id) -> Option<Vec<Justification>> {
        if self.find(a) != self.find(b) {
            return None;
        }
        let path = self.proof.path(a, b, self.proof.num_edges())?;
        Some(
            path.iter()
                .map(|&(ei, _)| self.proof.edge(ei).2.clone())
                .collect(),
        )
    }

    /// Produces a step-by-step term-level [`Proof`] that `a ≡ b`: a chain
    /// of equations starting at [`EGraph::term_of`]`(a)` and ending at
    /// `term_of(b)`, each justified by a lemma application (with its
    /// substitution), a congruence step carrying per-child sub-proofs, or
    /// a caller-given fact. Returns `None` when the ids were never proven
    /// equal. The proof references no e-graph state, so an independent
    /// checker can validate it by term rewriting alone.
    pub fn explain_equivalence(&self, a: Id, b: Id) -> Option<Proof> {
        if self.find(a) != self.find(b) {
            return None;
        }
        Some(self.explain_path(a, b, self.proof.num_edges()))
    }

    fn explain_path(&self, a: Id, b: Id, limit: usize) -> Proof {
        let path = self
            .proof
            .path(a, b, limit)
            .expect("equivalent ids are edge-connected");
        let mut steps = Vec::with_capacity(path.len());
        for (ei, fwd) in path {
            let (x, y, why) = self.proof.edge(ei);
            let (from, to) = if fwd { (x, y) } else { (y, x) };
            let before = self.term_of(from);
            let after = self.term_of(to);
            let step = match why {
                Justification::Rule { name, subst } => ProofStep::Rule {
                    name: name.clone(),
                    // The recorded edge runs LHS-instantiation → RHS; a
                    // backwards traversal applies the lemma right-to-left.
                    forward: fwd,
                    subst: subst
                        .iter()
                        .map(|(v, id)| (v.as_str().to_owned(), self.term_of(id)))
                        .collect(),
                    before,
                    after,
                },
                Justification::Congruence => {
                    let nf = self.orig[from.index()].clone();
                    let nt = self.orig[to.index()].clone();
                    debug_assert_eq!(nf.children().len(), nt.children().len());
                    let children = nf
                        .children()
                        .iter()
                        .zip(nt.children())
                        .map(|(&ca, &cb)| self.explain_path(ca, cb, ei))
                        .collect();
                    ProofStep::Congruence {
                        before,
                        after,
                        children,
                    }
                }
                Justification::Given(fact) => ProofStep::Given {
                    fact: fact.clone(),
                    before,
                    after,
                },
            };
            steps.push(step);
        }
        Proof { steps }
    }

    /// Checks whether two expressions are currently known equivalent.
    pub fn equivs(&self, a: &RecExpr, b: &RecExpr) -> bool {
        match (self.lookup_expr(a), self.lookup_expr(b)) {
            (Some(x), Some(y)) => self.find(x) == self.find(y),
            _ => false,
        }
    }
}

impl<A: Analysis> fmt::Debug for EGraph<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "EGraph {{ classes: {}, nodes: {} }}",
            self.num_classes(),
            self.total_nodes()
        )?;
        let mut ids: Vec<_> = self.classes.keys().collect();
        ids.sort();
        for id in ids {
            let class = &self.classes[id];
            write!(f, "  {id}: ")?;
            for n in &class.nodes {
                write!(f, "{n} ")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

impl<A: Analysis> std::ops::Index<Id> for EGraph<A> {
    type Output = EClass<A::Data>;
    fn index(&self, id: Id) -> &Self::Output {
        self.class(id)
    }
}
