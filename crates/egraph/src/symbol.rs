//! A global string interner for operator and tensor names.

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// An interned string.
///
/// Symbols are cheap to copy, hash and compare; the actual string lives in a
/// process-global interner. Two `Symbol`s are equal iff their strings are —
/// interning guarantees one `&'static str` per distinct string, so equality
/// and hashing are pointer operations and [`Symbol::as_str`] is free (no
/// locking), which matters because symbol comparison is the innermost loop
/// of e-matching.
///
/// # Examples
///
/// ```
/// use entangle_egraph::Symbol;
///
/// let a = Symbol::new("matmul");
/// let b = Symbol::new("matmul");
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "matmul");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Symbol(&'static str);

impl PartialEq for Symbol {
    fn eq(&self, other: &Symbol) -> bool {
        std::ptr::eq(self.0, other.0)
    }
}

impl Eq for Symbol {}

impl std::hash::Hash for Symbol {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        (self.0.as_ptr() as usize).hash(state);
    }
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Symbol) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Symbol) -> std::cmp::Ordering {
        // String order (deterministic across runs); not a hot path.
        self.0.cmp(other.0)
    }
}

fn interner() -> &'static RwLock<HashMap<&'static str, &'static str>> {
    static INTERNER: OnceLock<RwLock<HashMap<&'static str, &'static str>>> = OnceLock::new();
    INTERNER.get_or_init(|| RwLock::new(HashMap::new()))
}

impl Symbol {
    /// Interns `name` and returns its symbol.
    pub fn new(name: &str) -> Symbol {
        {
            let map = interner().read().expect("symbol interner poisoned");
            if let Some(&interned) = map.get(name) {
                return Symbol(interned);
            }
        }
        let mut map = interner().write().expect("symbol interner poisoned");
        if let Some(&interned) = map.get(name) {
            return Symbol(interned);
        }
        // Interned strings live for the process lifetime; leaking is the
        // standard interner trade-off and keeps `as_str` allocation-free.
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        map.insert(leaked, leaked);
        Symbol(leaked)
    }

    /// The interned string (no locking).
    pub fn as_str(self) -> &'static str {
        self.0
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::new(s)
    }
}
