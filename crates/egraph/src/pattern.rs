//! Patterns and e-matching.
//!
//! Patterns use the paper's s-expression surface syntax with `?x` variables:
//! `(slice (concat ?t1 ?t2 ?dim1) ?dim2 ?begin ?end)` (Listing 4).

use std::fmt;
use std::str::FromStr;

use crate::egraph::{Analysis, EGraph};
use crate::node::{parse_sexp, ENode, ParseExprError, RecExpr, Sexp};
use crate::symbol::Symbol;
use crate::unionfind::Id;

/// A pattern variable (`?name`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(Symbol);

impl Var {
    /// Creates a variable; the leading `?` is optional.
    pub fn new(name: &str) -> Var {
        Var(Symbol::new(name.strip_prefix('?').unwrap_or(name)))
    }

    /// The variable's name, without the `?`.
    pub fn as_str(self) -> &'static str {
        self.0.as_str()
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.0)
    }
}

impl FromStr for Var {
    type Err = ParseExprError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(rest) = s.strip_prefix('?') {
            if !rest.is_empty() {
                return Ok(Var::new(rest));
            }
        }
        Err(ParseExprError::new(format!("invalid variable {s:?}")))
    }
}

/// A variable binding produced by e-matching.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Subst {
    map: Vec<(Var, Id)>,
}

impl Subst {
    /// An empty substitution.
    pub fn new() -> Self {
        Self::default()
    }

    /// The class bound to `var`, if any.
    pub fn get(&self, var: Var) -> Option<Id> {
        self.map.iter().find(|(v, _)| *v == var).map(|(_, id)| *id)
    }

    /// Binds `var` to `id`, overwriting any existing binding.
    pub fn insert(&mut self, var: Var, id: Id) {
        if let Some(slot) = self.map.iter_mut().find(|(v, _)| *v == var) {
            slot.1 = id;
        } else {
            self.map.push((var, id));
        }
    }

    /// Iterates over the bindings.
    pub fn iter(&self) -> impl Iterator<Item = (Var, Id)> + '_ {
        self.map.iter().copied()
    }
}

impl std::ops::Index<Var> for Subst {
    type Output = Id;
    fn index(&self, var: Var) -> &Id {
        self.map
            .iter()
            .find(|(v, _)| *v == var)
            .map(|(_, id)| id)
            .unwrap_or_else(|| panic!("unbound pattern variable {var}"))
    }
}

/// The AST of a pattern: a tree over vars, scalars and operators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternAst {
    /// A pattern variable matching any e-class.
    Var(Var),
    /// A literal integer scalar.
    Int(i64),
    /// An operator with sub-patterns; nullary ops are tensor leaves.
    Op(Symbol, Vec<PatternAst>),
}

impl PatternAst {
    fn from_sexp(sexp: &Sexp) -> Result<PatternAst, ParseExprError> {
        match sexp {
            Sexp::Atom(a) => {
                if let Ok(i) = a.parse::<i64>() {
                    Ok(PatternAst::Int(i))
                } else if a.starts_with('?') {
                    Ok(PatternAst::Var(a.parse()?))
                } else {
                    Ok(PatternAst::Op(Symbol::new(a), Vec::new()))
                }
            }
            Sexp::List(items) => {
                let Some(Sexp::Atom(head)) = items.first() else {
                    return Err(ParseExprError::new("pattern list must start with an atom"));
                };
                if head.starts_with('?') {
                    return Err(ParseExprError::new(
                        "pattern variables cannot be applied as operators",
                    ));
                }
                let children = items[1..]
                    .iter()
                    .map(PatternAst::from_sexp)
                    .collect::<Result<_, _>>()?;
                Ok(PatternAst::Op(Symbol::new(head), children))
            }
        }
    }

    /// All variables in the pattern, in first-occurrence order.
    pub fn vars(&self) -> Vec<Var> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<Var>) {
        match self {
            PatternAst::Var(v) => {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
            PatternAst::Int(_) => {}
            PatternAst::Op(_, ch) => ch.iter().for_each(|c| c.collect_vars(out)),
        }
    }

    /// Instantiates the pattern under `subst`, adding nodes to the e-graph.
    pub fn instantiate<A: Analysis>(&self, egraph: &mut EGraph<A>, subst: &Subst) -> Id {
        match self {
            PatternAst::Var(v) => subst[*v],
            PatternAst::Int(i) => egraph.add(ENode::Int(*i)),
            PatternAst::Op(sym, ch) => {
                let children = ch.iter().map(|c| c.instantiate(egraph, subst)).collect();
                egraph.add(ENode::Op(*sym, children))
            }
        }
    }

    /// Looks up the instantiation *without inserting*; `None` if any node of
    /// the instantiated term is absent from the e-graph. This implements the
    /// §4.3.2 "constrained lemma" check: the target must already exist.
    pub fn lookup_instantiation<A: Analysis>(
        &self,
        egraph: &EGraph<A>,
        subst: &Subst,
    ) -> Option<Id> {
        match self {
            PatternAst::Var(v) => subst.get(*v),
            PatternAst::Int(i) => egraph.lookup(&ENode::Int(*i)),
            PatternAst::Op(sym, ch) => {
                let mut children = Vec::with_capacity(ch.len());
                for c in ch {
                    children.push(c.lookup_instantiation(egraph, subst)?);
                }
                egraph.lookup(&ENode::Op(*sym, children))
            }
        }
    }

    /// Converts a ground (variable-free) pattern into a [`RecExpr`].
    pub fn to_rec_expr(&self) -> Option<RecExpr> {
        let mut out = RecExpr::new();
        self.build_rec(&mut out)?;
        Some(out)
    }

    fn build_rec(&self, out: &mut RecExpr) -> Option<Id> {
        match self {
            PatternAst::Var(_) => None,
            PatternAst::Int(i) => Some(out.add(ENode::Int(*i))),
            PatternAst::Op(sym, ch) => {
                let mut children = Vec::with_capacity(ch.len());
                for c in ch {
                    children.push(c.build_rec(out)?);
                }
                Some(out.add(ENode::Op(*sym, children)))
            }
        }
    }
}

impl fmt::Display for PatternAst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternAst::Var(v) => write!(f, "{v}"),
            PatternAst::Int(i) => write!(f, "{i}"),
            PatternAst::Op(sym, ch) if ch.is_empty() => write!(f, "{sym}"),
            PatternAst::Op(sym, ch) => {
                write!(f, "({sym}")?;
                for c in ch {
                    write!(f, " {c}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A compiled pattern, searchable against an e-graph.
///
/// # Examples
///
/// ```
/// use entangle_egraph::{EGraph, Pattern, RecExpr};
///
/// let mut eg = EGraph::<()>::default();
/// let e: RecExpr = "(matmul A B)".parse().unwrap();
/// eg.add_expr(&e);
/// let pat: Pattern = "(matmul ?x ?y)".parse().unwrap();
/// let matches = pat.search(&eg);
/// assert_eq!(matches.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    ast: PatternAst,
}

/// All matches of a pattern within one e-class.
#[derive(Debug, Clone)]
pub struct SearchMatches {
    /// The matched e-class.
    pub eclass: Id,
    /// One substitution per distinct way the pattern matches.
    pub substs: Vec<Subst>,
}

impl Pattern {
    /// Compiles a pattern from its AST.
    pub fn from_ast(ast: PatternAst) -> Pattern {
        Pattern { ast }
    }

    /// The underlying AST.
    pub fn ast(&self) -> &PatternAst {
        &self.ast
    }

    /// The pattern's variables.
    pub fn vars(&self) -> Vec<Var> {
        self.ast.vars()
    }

    /// Operator symbols that must be present for any match (non-leaf ops in
    /// the pattern).
    pub fn required_ops(&self) -> Vec<Symbol> {
        fn collect(ast: &PatternAst, out: &mut Vec<Symbol>) {
            if let PatternAst::Op(sym, ch) = ast {
                if !ch.is_empty() && !out.contains(sym) {
                    out.push(*sym);
                }
                ch.iter().for_each(|c| collect(c, out));
            }
        }
        let mut out = Vec::new();
        collect(&self.ast, &mut out);
        out
    }

    /// Searches the whole e-graph.
    pub fn search<A: Analysis>(&self, egraph: &EGraph<A>) -> Vec<SearchMatches> {
        self.search_with_stats(egraph).0
    }

    /// Searches the whole e-graph, also reporting `(visited, skipped)`
    /// class counts — the e-matching fast-path telemetry surfaced as
    /// [`crate::SaturationReport`]'s searched-vs-skipped counters.
    ///
    /// When the pattern is rooted at an operator, only classes containing
    /// that head symbol (per [`EGraph::classes_with_op`]) are visited;
    /// every other class is counted as skipped. Patterns rooted at a
    /// variable or integer fall back to scanning every class.
    pub fn search_with_stats<A: Analysis>(
        &self,
        egraph: &EGraph<A>,
    ) -> (Vec<SearchMatches>, u64, u64) {
        let total = egraph.num_classes() as u64;
        // Prefilter: a pattern whose operators never occur cannot match.
        if self.required_ops().iter().any(|&sym| !egraph.has_op(sym)) {
            return (Vec::new(), 0, total);
        }
        let ids = match &self.ast {
            // Head-symbol fast path: only classes holding a node with the
            // root operator can match.
            PatternAst::Op(sym, _) => egraph.classes_with_op(*sym),
            // Var/Int roots match structurally anywhere: full scan.
            _ => egraph.class_ids(),
        };
        let visited = ids.len() as u64;
        let mut out = Vec::new();
        for id in ids {
            if let Some(m) = self.search_eclass(egraph, id) {
                out.push(m);
            }
        }
        (out, visited, total.saturating_sub(visited))
    }

    /// Searches one e-class.
    pub fn search_eclass<A: Analysis>(
        &self,
        egraph: &EGraph<A>,
        eclass: Id,
    ) -> Option<SearchMatches> {
        let substs = match_pattern(egraph, &self.ast, egraph.find(eclass), Subst::new());
        if substs.is_empty() {
            None
        } else {
            let mut dedup: Vec<Subst> = Vec::with_capacity(substs.len());
            for s in substs {
                if !dedup.contains(&s) {
                    dedup.push(s);
                }
            }
            Some(SearchMatches {
                eclass: egraph.find(eclass),
                substs: dedup,
            })
        }
    }
}

fn match_pattern<A: Analysis>(
    egraph: &EGraph<A>,
    pat: &PatternAst,
    id: Id,
    subst: Subst,
) -> Vec<Subst> {
    match pat {
        PatternAst::Var(v) => {
            if let Some(bound) = subst.get(*v) {
                if egraph.find(bound) == id {
                    vec![subst]
                } else {
                    vec![]
                }
            } else {
                let mut s = subst;
                s.insert(*v, id);
                vec![s]
            }
        }
        PatternAst::Int(i) => match egraph.lookup(&ENode::Int(*i)) {
            Some(found) if found == id => vec![subst],
            _ => vec![],
        },
        PatternAst::Op(sym, pats) => {
            let mut out = Vec::new();
            for node in &egraph[id].nodes {
                let ENode::Op(nsym, children) = node else {
                    continue;
                };
                if nsym != sym || children.len() != pats.len() {
                    continue;
                }
                let mut partials = vec![subst.clone()];
                for (p, &c) in pats.iter().zip(children.iter()) {
                    let mut next = Vec::new();
                    for s in partials {
                        next.extend(match_pattern(egraph, p, egraph.find(c), s));
                    }
                    partials = next;
                    if partials.is_empty() {
                        break;
                    }
                }
                out.extend(partials);
            }
            out
        }
    }
}

impl FromStr for Pattern {
    type Err = ParseExprError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let sexp = parse_sexp(s)?;
        Ok(Pattern {
            ast: PatternAst::from_sexp(&sexp)?,
        })
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.ast)
    }
}
