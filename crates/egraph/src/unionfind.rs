//! Union-find over e-class ids.

use std::fmt;

/// An e-class identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Id(pub(crate) u32);

impl Id {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs an id from a raw index (used by [`crate::RecExpr`], whose
    /// node slots double as ids).
    pub fn from_index(index: usize) -> Id {
        Id(u32::try_from(index).expect("e-graph id overflow"))
    }
}

impl fmt::Display for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A union-find (disjoint set) structure with path compression.
///
/// # Examples
///
/// ```
/// use entangle_egraph::UnionFind;
///
/// let mut uf = UnionFind::default();
/// let a = uf.make_set();
/// let b = uf.make_set();
/// assert_ne!(uf.find(a), uf.find(b));
/// uf.union(a, b);
/// assert_eq!(uf.find(a), uf.find(b));
/// ```
#[derive(Debug, Clone, Default)]
pub struct UnionFind {
    parents: Vec<Id>,
}

impl UnionFind {
    /// Creates a fresh singleton set and returns its id.
    pub fn make_set(&mut self) -> Id {
        let id = Id(u32::try_from(self.parents.len()).expect("e-graph id overflow"));
        self.parents.push(id);
        id
    }

    /// Number of ids ever created.
    pub fn len(&self) -> usize {
        self.parents.len()
    }

    /// `true` when no set has been created.
    pub fn is_empty(&self) -> bool {
        self.parents.is_empty()
    }

    /// The canonical representative of `id`'s set (with path compression).
    pub fn find(&mut self, mut id: Id) -> Id {
        // Iterative two-pass path compression.
        let mut root = id;
        while self.parents[root.index()] != root {
            root = self.parents[root.index()];
        }
        while self.parents[id.index()] != id {
            let next = self.parents[id.index()];
            self.parents[id.index()] = root;
            id = next;
        }
        root
    }

    /// The canonical representative without path compression (no `&mut`).
    pub fn find_immutable(&self, mut id: Id) -> Id {
        while self.parents[id.index()] != id {
            id = self.parents[id.index()];
        }
        id
    }

    /// Merges the two sets; the first argument's root becomes the root.
    ///
    /// Returns the new root.
    pub fn union(&mut self, a: Id, b: Id) -> Id {
        let ra = self.find(a);
        let rb = self.find(b);
        self.parents[rb.index()] = ra;
        ra
    }
}
