//! An e-graph and equality-saturation engine: the `egg` stand-in for ENTANGLE.
//!
//! The paper's relation-inference core "uses EGraphs (and the egg library) to
//! implement rewriting: we represent expressions as ENodes and lemmas as
//! rewrite rules; we run saturation, and then use the resulting EClasses in
//! our rewriting functions" (§4.2.2). This crate reimplements that machinery
//! from scratch:
//!
//! - [`EGraph`]: hash-consed e-nodes, a union-find over e-classes, and the
//!   deferred *rebuilding* algorithm that restores congruence closure after a
//!   batch of unions.
//! - [`Analysis`]: per-e-class semilattice data (the checker attaches tensor
//!   shapes and const-folded scalars).
//! - [`Pattern`] / [`Rewrite`]: an s-expression pattern DSL matching the
//!   paper's lemma syntax (Listing 4), with unconditional rewrites,
//!   conditional rewrites, and fully dynamic appliers.
//! - [`Runner`]: equality saturation with node/iteration/time limits and
//!   per-rule application counts (the raw data behind the paper's Figure 6
//!   lemma-usage heatmap).
//! - [`Extractor`]: cost-based term extraction, used both for "pick the
//!   simplest representative" pruning (§4.3.2) and for *clean-expression*
//!   extraction (assign infinite cost to non-clean operators).
//!
//! # Examples
//!
//! Proving the block-matmul identity from the paper's running example
//! (Figure 2): `matmul(concat(A₁,A₂,1), concat(B₁,B₂,0)) = add(matmul(A₁,B₁),
//! matmul(A₂,B₂))`.
//!
//! ```
//! use entangle_egraph::{EGraph, RecExpr, Rewrite, Runner};
//!
//! let lemma: Rewrite<()> = Rewrite::parse(
//!     "matmul-of-concat",
//!     "(matmul (concat ?a0 ?a1 1) (concat ?b0 ?b1 0))",
//!     "(add (matmul ?a0 ?b0) (matmul ?a1 ?b1))",
//! ).unwrap();
//!
//! let mut egraph = EGraph::<()>::default();
//! let lhs: RecExpr = "(matmul (concat A1 A2 1) (concat B1 B2 0))".parse().unwrap();
//! let rhs: RecExpr = "(add (matmul A1 B1) (matmul A2 B2))".parse().unwrap();
//! let l = egraph.add_expr(&lhs);
//! let r = egraph.add_expr(&rhs);
//!
//! let mut runner = Runner::new(egraph);
//! runner.run(&[lemma]);
//! assert_eq!(runner.egraph.find(l), runner.egraph.find(r));
//! ```

#![forbid(unsafe_code)]

mod egraph;
mod explain;
mod extract;
mod node;
mod pattern;
mod rewrite;
mod runner;
mod symbol;
mod unionfind;

pub use egraph::{Analysis, EClass, EGraph};
pub use explain::{Justification, Proof, ProofStep};
pub use extract::{AstSize, CostFunction, Extractor};
pub use node::{ENode, ParseExprError, RecExpr};
pub use pattern::{Pattern, PatternAst, SearchMatches, Subst, Var};
pub use rewrite::{Applier, Condition, Rewrite};
pub use runner::{
    BackoffSchedule, IterationReport, RuleReport, RunReport, Runner, SaturationReport, StopReason,
    DEFAULT_BAN_LENGTH, DEFAULT_MATCH_BUDGET,
};
pub use symbol::Symbol;
pub use unionfind::{Id, UnionFind};

#[cfg(test)]
mod tests;
