//! A dense `f64` interpreter for the ENTANGLE operator vocabulary.
//!
//! The paper validates its lemmas "by checking correct shapes and types"
//! (§5) and ultimately trusts them because they mirror ATen semantics. This
//! crate goes further and gives the reproduction an executable ground truth:
//! every operator of [`entangle_ir::Op`] can be interpreted on concrete
//! tensors, which lets the test suite
//!
//! 1. validate every lemma by evaluating both sides on random inputs, and
//! 2. differentially test the checker end to end: run the sequential model
//!    `G_s` and the distributed implementation `G_d` on inputs related by
//!    `R_i`, then confirm the output relation `R_o` ENTANGLE produced really
//!    reconstructs `G_s`'s outputs (the soundness certificate of §3.3).
//!
//! This is the substitution for "run it on the GPU cluster": same property,
//! CPU-sized tensors.
//!
//! # Examples
//!
//! ```
//! use entangle_ir::{DType, GraphBuilder, Op};
//! use entangle_runtime::{eval_graph, Value};
//! use std::collections::HashMap;
//!
//! let mut g = GraphBuilder::new("axpy");
//! let x = g.input("x", &[2, 2], DType::F32);
//! let y = g.input("y", &[2, 2], DType::F32);
//! let s = g.apply("s", Op::Add, &[x, y]).unwrap();
//! g.mark_output(s);
//! let graph = g.finish().unwrap();
//!
//! let mut inputs = HashMap::new();
//! inputs.insert(x, Value::new(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap());
//! inputs.insert(y, Value::new(vec![2, 2], vec![10.0, 20.0, 30.0, 40.0]).unwrap());
//! let env = eval_graph(&graph, &inputs).unwrap();
//! assert_eq!(env[&s].data(), &[11.0, 22.0, 33.0, 44.0]);
//! ```

#![forbid(unsafe_code)]

mod eval;
mod value;

pub use eval::{eval_graph, eval_op, EvalError};
pub use value::Value;

use rand::Rng;

/// Fills a [`Value`] of the given shape with uniform random data in
/// `(-1, 1)`; the standard input generator for differential tests.
pub fn random_value<R: Rng>(rng: &mut R, shape: &[usize]) -> Value {
    let n: usize = shape.iter().product();
    let data = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    Value::new(shape.to_vec(), data).expect("consistent shape")
}

/// Random integer "token id" tensor in `[0, high)` (stored as floats, as all
/// runtime values are).
pub fn random_ids<R: Rng>(rng: &mut R, shape: &[usize], high: i64) -> Value {
    let n: usize = shape.iter().product();
    let data = (0..n).map(|_| rng.gen_range(0..high) as f64).collect();
    Value::new(shape.to_vec(), data).expect("consistent shape")
}

#[cfg(test)]
mod tests;
