use std::collections::HashMap;

use entangle_ir::{DType, Dim, GraphBuilder, Op};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{eval_graph, eval_op, random_value, Value};

fn v(shape: &[usize], data: &[f64]) -> Value {
    Value::new(shape.to_vec(), data.to_vec()).unwrap()
}

#[test]
fn value_indexing() {
    let t = v(&[2, 3], &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
    assert_eq!(t.get(&[0, 0]), 0.0);
    assert_eq!(t.get(&[1, 2]), 5.0);
    assert_eq!(t.strides(), vec![3, 1]);
    assert_eq!(t.indices().count(), 6);
    let s = Value::scalar(7.0);
    assert_eq!(s.as_scalar(), 7.0);
    assert_eq!(s.indices().count(), 1);
}

#[test]
fn elementwise_with_broadcast() {
    let a = v(&[2, 2], &[1.0, 2.0, 3.0, 4.0]);
    let b = v(&[2], &[10.0, 20.0]);
    let out = eval_op(&Op::Add, &[&a, &b]).unwrap();
    assert_eq!(out.data(), &[11.0, 22.0, 13.0, 24.0]);
    let out = eval_op(&Op::Mul, &[&a, &Value::scalar(2.0)]).unwrap();
    assert_eq!(out.data(), &[2.0, 4.0, 6.0, 8.0]);
}

#[test]
fn matmul_2d_matches_manual() {
    let a = v(&[2, 3], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    let b = v(&[3, 2], &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
    let out = eval_op(&Op::Matmul, &[&a, &b]).unwrap();
    assert_eq!(out.shape(), &[2, 2]);
    assert_eq!(out.data(), &[58.0, 64.0, 139.0, 154.0]);
}

#[test]
fn matmul_batched_broadcast() {
    let a = v(&[2, 1, 2], &[1.0, 2.0, 3.0, 4.0]); // batch 2 of [1,2]
    let b = v(&[2, 2], &[1.0, 0.0, 0.0, 1.0]); // identity, no batch
    let out = eval_op(&Op::Matmul, &[&a, &b]).unwrap();
    assert_eq!(out.shape(), &[2, 1, 2]);
    assert_eq!(out.data(), &[1.0, 2.0, 3.0, 4.0]);
}

#[test]
fn slice_concat_roundtrip() {
    let x = v(&[2, 4], &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
    let left = eval_op(
        &Op::Slice {
            dim: 1,
            start: Dim::from(0),
            end: Dim::from(2),
        },
        &[&x],
    )
    .unwrap();
    let right = eval_op(
        &Op::Slice {
            dim: 1,
            start: Dim::from(2),
            end: Dim::from(4),
        },
        &[&x],
    )
    .unwrap();
    let back = eval_op(&Op::Concat { dim: 1 }, &[&left, &right]).unwrap();
    assert_eq!(back, x);
}

#[test]
fn transpose_permute() {
    let x = v(&[2, 3], &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
    let t = eval_op(&Op::Transpose { d0: 0, d1: 1 }, &[&x]).unwrap();
    assert_eq!(t.shape(), &[3, 2]);
    assert_eq!(t.get(&[2, 1]), x.get(&[1, 2]));
    let p = eval_op(&Op::Permute { perm: vec![1, 0] }, &[&x]).unwrap();
    assert_eq!(p, t);
}

#[test]
fn pad_inserts_zeros() {
    let x = v(&[2], &[1.0, 2.0]);
    let p = eval_op(
        &Op::Pad {
            dim: 0,
            before: Dim::from(1),
            after: Dim::from(2),
        },
        &[&x],
    )
    .unwrap();
    assert_eq!(p.data(), &[0.0, 1.0, 2.0, 0.0, 0.0]);
}

#[test]
fn softmax_rows_sum_to_one() {
    let x = v(&[2, 3], &[1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
    let s = eval_op(&Op::Softmax { dim: 1 }, &[&x]).unwrap();
    for r in 0..2 {
        let sum: f64 = (0..3).map(|c| s.get(&[r, c])).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }
    // Monotone in the logits.
    assert!(s.get(&[0, 2]) > s.get(&[0, 0]));
}

#[test]
fn reductions() {
    let x = v(&[2, 3], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    let s = eval_op(
        &Op::SumDim {
            dim: 1,
            keepdim: false,
        },
        &[&x],
    )
    .unwrap();
    assert_eq!(s.data(), &[6.0, 15.0]);
    let m = eval_op(
        &Op::MeanDim {
            dim: 0,
            keepdim: true,
        },
        &[&x],
    )
    .unwrap();
    assert_eq!(m.shape(), &[1, 3]);
    assert_eq!(m.data(), &[2.5, 3.5, 4.5]);
    assert_eq!(eval_op(&Op::SumAll, &[&x]).unwrap().as_scalar(), 21.0);
    assert_eq!(eval_op(&Op::MeanAll, &[&x]).unwrap().as_scalar(), 3.5);
}

#[test]
fn layer_norm_normalizes() {
    let x = v(&[1, 4], &[1.0, 2.0, 3.0, 4.0]);
    let w = v(&[4], &[1.0, 1.0, 1.0, 1.0]);
    let b = v(&[4], &[0.0, 0.0, 0.0, 0.0]);
    let y = eval_op(&Op::LayerNorm, &[&x, &w, &b]).unwrap();
    let mean: f64 = y.data().iter().sum::<f64>() / 4.0;
    assert!(mean.abs() < 1e-9);
    let var: f64 = y.data().iter().map(|v| v * v).sum::<f64>() / 4.0;
    assert!((var - 1.0).abs() < 1e-3);
}

#[test]
fn rms_norm_scales() {
    let x = v(&[1, 2], &[3.0, 4.0]);
    let w = v(&[2], &[1.0, 1.0]);
    let y = eval_op(&Op::RmsNorm, &[&x, &w]).unwrap();
    // rms = sqrt((9+16)/2) = sqrt(12.5)
    let rms = 12.5f64.sqrt();
    assert!((y.get(&[0, 0]) - 3.0 / rms).abs() < 1e-4);
    assert!((y.get(&[0, 1]) - 4.0 / rms).abs() < 1e-4);
}

/// Interleaved rope tables: the pair (2i, 2i+1) shares one angle.
fn rope_tables(s: usize, h: usize) -> (Value, Value) {
    let mut cos = Value::zeros(vec![s, h]);
    let mut sin = Value::zeros(vec![s, h]);
    for t in 0..s {
        for i in 0..h / 2 {
            let angle = (t as f64) / 10f64.powf(2.0 * i as f64 / h as f64);
            for j in [2 * i, 2 * i + 1] {
                cos.set(&[t, j], angle.cos());
                sin.set(&[t, j], angle.sin());
            }
        }
    }
    (cos, sin)
}

#[test]
fn rope_preserves_norm() {
    // Rotary embedding is a rotation: per-pair norms are preserved when
    // cos/sin come from a real angle table.
    let (s, h) = (3, 4);
    let (cos, sin) = rope_tables(s, h);
    let mut rng = StdRng::seed_from_u64(7);
    let x = random_value(&mut rng, &[2, s, h]);
    let y = eval_op(&Op::Rope, &[&x, &cos, &sin]).unwrap();
    let norm = |val: &Value| val.data().iter().map(|v| v * v).sum::<f64>();
    assert!((norm(&x) - norm(&y)).abs() < 1e-9);
}

#[test]
fn rope_commutes_with_even_hidden_split() {
    // The property tensor-parallel head sharding relies on: slicing x and
    // the tables at an even hidden boundary commutes with rope.
    let (s, h) = (4, 8);
    let (cos, sin) = rope_tables(s, h);
    let mut rng = StdRng::seed_from_u64(8);
    let x = random_value(&mut rng, &[2, s, h]);
    let full = eval_op(&Op::Rope, &[&x, &cos, &sin]).unwrap();
    let sl = |v: &Value, dim: usize, lo: i64, hi: i64| {
        eval_op(
            &Op::Slice {
                dim,
                start: Dim::from(lo),
                end: Dim::from(hi),
            },
            &[v],
        )
        .unwrap()
    };
    let left = eval_op(
        &Op::Rope,
        &[&sl(&x, 2, 0, 4), &sl(&cos, 1, 0, 4), &sl(&sin, 1, 0, 4)],
    )
    .unwrap();
    let right = eval_op(
        &Op::Rope,
        &[&sl(&x, 2, 4, 8), &sl(&cos, 1, 4, 8), &sl(&sin, 1, 4, 8)],
    )
    .unwrap();
    let cat = eval_op(&Op::Concat { dim: 2 }, &[&left, &right]).unwrap();
    assert!(cat.allclose(&full, 1e-12));
}

#[test]
fn embedding_gathers_rows() {
    let w = v(&[3, 2], &[0.0, 1.0, 10.0, 11.0, 20.0, 21.0]);
    let ids = v(&[2], &[2.0, 0.0]);
    let out = eval_op(&Op::Embedding, &[&w, &ids]).unwrap();
    assert_eq!(out.shape(), &[2, 2]);
    assert_eq!(out.data(), &[20.0, 21.0, 0.0, 1.0]);
}

#[test]
fn losses() {
    let p = v(&[2], &[1.0, 2.0]);
    let t = v(&[2], &[0.0, 0.0]);
    assert_eq!(eval_op(&Op::MseLoss, &[&p, &t]).unwrap().as_scalar(), 2.5);

    let logits = v(&[1, 3], &[0.0, 0.0, 10.0]);
    let targets = v(&[1], &[2.0]);
    let ce = eval_op(&Op::CrossEntropy, &[&logits, &targets]).unwrap();
    assert!(ce.as_scalar() < 0.01, "confident correct prediction");
}

#[test]
fn collectives() {
    let a = v(&[2, 2], &[1.0, 2.0, 3.0, 4.0]);
    let b = v(&[2, 2], &[10.0, 20.0, 30.0, 40.0]);
    let ar = eval_op(&Op::AllReduce, &[&a, &b]).unwrap();
    assert_eq!(ar.data(), &[11.0, 22.0, 33.0, 44.0]);

    let ag = eval_op(&Op::AllGather { dim: 0 }, &[&a, &b]).unwrap();
    assert_eq!(ag.shape(), &[4, 2]);

    let rs0 = eval_op(
        &Op::ReduceScatter {
            dim: 0,
            rank: 0,
            world: 2,
        },
        &[&a, &b],
    )
    .unwrap();
    let rs1 = eval_op(
        &Op::ReduceScatter {
            dim: 0,
            rank: 1,
            world: 2,
        },
        &[&a, &b],
    )
    .unwrap();
    assert_eq!(rs0.data(), &[11.0, 22.0]);
    assert_eq!(rs1.data(), &[33.0, 44.0]);
    // reduce_scatter shards concatenate back to the all_reduce.
    let cat = eval_op(&Op::Concat { dim: 0 }, &[&rs0, &rs1]).unwrap();
    assert_eq!(cat, ar);
}

#[test]
fn scalar_mul_rational() {
    let x = v(&[2], &[3.0, 6.0]);
    let out = eval_op(&Op::ScalarMul { numer: 1, denom: 3 }, &[&x]).unwrap();
    assert_eq!(out.data(), &[1.0, 2.0]);
}

#[test]
fn graph_eval_end_to_end() {
    let mut g = GraphBuilder::new("mlp");
    let x = g.input("x", &[1, 4], DType::F32);
    let w1 = g.input("w1", &[4, 8], DType::F32);
    let w2 = g.input("w2", &[8, 2], DType::F32);
    let h = g.apply("h", Op::Matmul, &[x, w1]).unwrap();
    let a = g.apply("a", Op::Gelu, &[h]).unwrap();
    let y = g.apply("y", Op::Matmul, &[a, w2]).unwrap();
    g.mark_output(y);
    let graph = g.finish().unwrap();

    let mut rng = StdRng::seed_from_u64(0);
    let mut inputs = HashMap::new();
    inputs.insert(x, random_value(&mut rng, &[1, 4]));
    inputs.insert(w1, random_value(&mut rng, &[4, 8]));
    inputs.insert(w2, random_value(&mut rng, &[8, 2]));
    let env = eval_graph(&graph, &inputs).unwrap();
    assert_eq!(env[&y].shape(), &[1, 2]);

    // Missing input is an error.
    inputs.remove(&w2);
    assert!(eval_graph(&graph, &inputs).is_err());
}

#[test]
fn tensor_parallel_matmul_identity() {
    // The core TP correctness fact, concretely: column-split B, compute
    // shards, concat == full matmul; row-split with sum == full matmul.
    let mut rng = StdRng::seed_from_u64(42);
    let a = random_value(&mut rng, &[3, 4]);
    let b = random_value(&mut rng, &[4, 6]);
    let full = eval_op(&Op::Matmul, &[&a, &b]).unwrap();

    // Column parallel.
    let b0 = eval_op(
        &Op::Slice {
            dim: 1,
            start: Dim::from(0),
            end: Dim::from(3),
        },
        &[&b],
    )
    .unwrap();
    let b1 = eval_op(
        &Op::Slice {
            dim: 1,
            start: Dim::from(3),
            end: Dim::from(6),
        },
        &[&b],
    )
    .unwrap();
    let c0 = eval_op(&Op::Matmul, &[&a, &b0]).unwrap();
    let c1 = eval_op(&Op::Matmul, &[&a, &b1]).unwrap();
    let cat = eval_op(&Op::Concat { dim: 1 }, &[&c0, &c1]).unwrap();
    assert!(cat.allclose(&full, 1e-9));

    // Row parallel.
    let a0 = eval_op(
        &Op::Slice {
            dim: 1,
            start: Dim::from(0),
            end: Dim::from(2),
        },
        &[&a],
    )
    .unwrap();
    let a1 = eval_op(
        &Op::Slice {
            dim: 1,
            start: Dim::from(2),
            end: Dim::from(4),
        },
        &[&a],
    )
    .unwrap();
    let b0 = eval_op(
        &Op::Slice {
            dim: 0,
            start: Dim::from(0),
            end: Dim::from(2),
        },
        &[&b],
    )
    .unwrap();
    let b1 = eval_op(
        &Op::Slice {
            dim: 0,
            start: Dim::from(2),
            end: Dim::from(4),
        },
        &[&b],
    )
    .unwrap();
    let p0 = eval_op(&Op::Matmul, &[&a0, &b0]).unwrap();
    let p1 = eval_op(&Op::Matmul, &[&a1, &b1]).unwrap();
    let sum = eval_op(&Op::Add, &[&p0, &p1]).unwrap();
    assert!(sum.allclose(&full, 1e-9));
}

#[test]
fn attention_head_split_identity() {
    // The fused-attention lemma, concretely: splitting heads across ranks
    // and concatenating outputs equals full multi-head attention.
    let mut rng = StdRng::seed_from_u64(3);
    let (s, h, heads) = (5, 8, 4);
    let q = random_value(&mut rng, &[2, s, h]);
    let k = random_value(&mut rng, &[2, s, h]);
    let v_ = random_value(&mut rng, &[2, s, h]);
    for causal in [false, true] {
        let full = eval_op(&Op::Attention { heads, causal }, &[&q, &k, &v_]).unwrap();
        let half = Op::Attention {
            heads: heads / 2,
            causal,
        };
        let sl = |x: &Value, lo: i64, hi: i64| {
            eval_op(
                &Op::Slice {
                    dim: 2,
                    start: Dim::from(lo),
                    end: Dim::from(hi),
                },
                &[x],
            )
            .unwrap()
        };
        let o0 = eval_op(&half, &[&sl(&q, 0, 4), &sl(&k, 0, 4), &sl(&v_, 0, 4)]).unwrap();
        let o1 = eval_op(&half, &[&sl(&q, 4, 8), &sl(&k, 4, 8), &sl(&v_, 4, 8)]).unwrap();
        let cat = eval_op(&Op::Concat { dim: 2 }, &[&o0, &o1]).unwrap();
        assert!(cat.allclose(&full, 1e-9), "causal={causal}");
    }
}

#[test]
fn attention_causal_masks_future() {
    // With a causal mask, position 0's output depends only on position 0.
    let q = v(&[1, 2, 2], &[1.0, 0.0, 0.0, 1.0]);
    let k = q.clone();
    let v1 = v(&[1, 2, 2], &[5.0, 6.0, 7.0, 8.0]);
    let out = eval_op(
        &Op::Attention {
            heads: 1,
            causal: true,
        },
        &[&q, &k, &v1],
    )
    .unwrap();
    assert_eq!(out.get(&[0, 0, 0]), 5.0);
    assert_eq!(out.get(&[0, 0, 1]), 6.0);
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_value(max_dim: usize) -> impl Strategy<Value = Value> {
        proptest::collection::vec(1usize..=max_dim, 1..=3).prop_flat_map(|shape| {
            let n: usize = shape.iter().product();
            proptest::collection::vec(-5.0f64..5.0, n)
                .prop_map(move |data| Value::new(shape.clone(), data).unwrap())
        })
    }

    proptest! {
        /// concat(slice(x, 0, k), slice(x, k, n)) == x along any dim.
        #[test]
        fn slice_concat_identity(x in arb_value(5), frac in 0.0f64..1.0) {
            for dim in 0..x.rank() {
                let n = x.shape()[dim];
                let k = ((n as f64) * frac) as usize;
                let l = eval_op(&Op::Slice { dim, start: Dim::from(0), end: Dim::from(k as i64) }, &[&x]).unwrap();
                let r = eval_op(&Op::Slice { dim, start: Dim::from(k as i64), end: Dim::from(n as i64) }, &[&x]).unwrap();
                let back = eval_op(&Op::Concat { dim }, &[&l, &r]).unwrap();
                prop_assert_eq!(&back, &x);
            }
        }

        /// Transposing twice is the identity.
        #[test]
        fn transpose_involution(x in arb_value(4)) {
            if x.rank() >= 2 {
                let t = Op::Transpose { d0: 0, d1: x.rank() - 1 };
                let once = eval_op(&t, &[&x]).unwrap();
                let twice = eval_op(&t, &[&once]).unwrap();
                prop_assert_eq!(&twice, &x);
            }
        }

        /// sum_dim distributes over concat along the reduced dim.
        #[test]
        fn sum_dim_of_concat(a in arb_value(4), frac in 0.0f64..1.0) {
            let dim = 0;
            let n = a.shape()[dim];
            let k = ((n as f64) * frac) as usize;
            let l = eval_op(&Op::Slice { dim, start: Dim::from(0), end: Dim::from(k as i64) }, &[&a]).unwrap();
            let r = eval_op(&Op::Slice { dim, start: Dim::from(k as i64), end: Dim::from(n as i64) }, &[&a]).unwrap();
            let sum_full = eval_op(&Op::SumDim { dim, keepdim: false }, &[&a]).unwrap();
            let sl = eval_op(&Op::SumDim { dim, keepdim: false }, &[&l]).unwrap();
            let sr = eval_op(&Op::SumDim { dim, keepdim: false }, &[&r]).unwrap();
            let sum_parts = eval_op(&Op::Add, &[&sl, &sr]).unwrap();
            prop_assert!(sum_parts.allclose(&sum_full, 1e-9));
        }

        /// Matmul distributes over a row-split of the left operand
        /// (the basis of sequence parallelism).
        #[test]
        fn matmul_row_split(m in 2usize..5, k in 1usize..4, n in 1usize..4, seed in 0u64..1000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = random_value(&mut rng, &[m, k]);
            let b = random_value(&mut rng, &[k, n]);
            let full = eval_op(&Op::Matmul, &[&a, &b]).unwrap();
            let split = m / 2;
            let a0 = eval_op(&Op::Slice { dim: 0, start: Dim::from(0), end: Dim::from(split as i64) }, &[&a]).unwrap();
            let a1 = eval_op(&Op::Slice { dim: 0, start: Dim::from(split as i64), end: Dim::from(m as i64) }, &[&a]).unwrap();
            let c0 = eval_op(&Op::Matmul, &[&a0, &b]).unwrap();
            let c1 = eval_op(&Op::Matmul, &[&a1, &b]).unwrap();
            let cat = eval_op(&Op::Concat { dim: 0 }, &[&c0, &c1]).unwrap();
            prop_assert!(cat.allclose(&full, 1e-9));
        }
    }
}
