//! Operator and graph evaluation.

use std::collections::HashMap;
use std::fmt;

use entangle_ir::{Graph, Op, TensorId};

use crate::value::Value;

/// Errors raised during evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// Input shapes are invalid for the operator.
    Shape(String),
    /// A symbolic attribute could not be resolved to a concrete value.
    Symbolic(String),
    /// A graph input was not supplied.
    MissingInput(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Shape(m) => write!(f, "shape error during eval: {m}"),
            EvalError::Symbolic(m) => write!(f, "unresolved symbolic scalar: {m}"),
            EvalError::MissingInput(m) => write!(f, "missing graph input: {m}"),
        }
    }
}

impl std::error::Error for EvalError {}

fn shape_err(op: &Op, msg: impl fmt::Display) -> EvalError {
    EvalError::Shape(format!("{op}: {msg}"))
}

fn dim_const(op: &Op, d: &entangle_ir::Dim) -> Result<i64, EvalError> {
    d.as_const()
        .ok_or_else(|| EvalError::Symbolic(format!("{op}: attribute {d} is symbolic")))
}

/// Evaluates one operator on concrete inputs.
///
/// # Errors
///
/// Returns [`EvalError`] on shape violations or unresolved symbolic
/// attributes.
pub fn eval_op(op: &Op, inputs: &[&Value]) -> Result<Value, EvalError> {
    match op {
        Op::Add => broadcast_binary(op, inputs, |a, b| a + b),
        Op::Sub => broadcast_binary(op, inputs, |a, b| a - b),
        Op::Mul => broadcast_binary(op, inputs, |a, b| a * b),
        Op::Div => broadcast_binary(op, inputs, |a, b| a / b),
        Op::Maximum => broadcast_binary(op, inputs, f64::max),
        Op::Neg => unary(inputs, |x| -x),
        Op::Exp => unary(inputs, f64::exp),
        Op::Sqrt => unary(inputs, f64::sqrt),
        Op::Rsqrt => unary(inputs, |x| 1.0 / x.sqrt()),
        Op::Tanh => unary(inputs, f64::tanh),
        Op::Gelu => unary(inputs, |x| {
            0.5 * x
                * (1.0 + ((2.0 / std::f64::consts::PI).sqrt() * (x + 0.044715 * x * x * x)).tanh())
        }),
        Op::Silu => unary(inputs, |x| x / (1.0 + (-x).exp())),
        Op::Relu => unary(inputs, |x| x.max(0.0)),
        Op::Sigmoid => unary(inputs, |x| 1.0 / (1.0 + (-x).exp())),
        Op::Step => unary(inputs, |x| if x > 0.0 { 1.0 } else { 0.0 }),
        Op::GeluGrad => unary(inputs, |x| {
            let c = (2.0 / std::f64::consts::PI).sqrt();
            let k = 0.044715;
            let t = (c * (x + k * x * x * x)).tanh();
            0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * c * (1.0 + 3.0 * k * x * x)
        }),
        Op::SiluGrad => unary(inputs, |x| {
            let s = 1.0 / (1.0 + (-x).exp());
            s * (1.0 + x * (1.0 - s))
        }),
        Op::OnesLike => unary(inputs, |_| 1.0),
        Op::Cos => unary(inputs, f64::cos),
        Op::Sin => unary(inputs, f64::sin),
        Op::ScalarMul { numer, denom } => {
            let k = *numer as f64 / *denom as f64;
            unary(inputs, |x| k * x)
        }
        Op::Identity => Ok(inputs[0].clone()),
        Op::SumDim { dim, keepdim } => reduce_dim(op, inputs[0], *dim, *keepdim, false),
        Op::MeanDim { dim, keepdim } => reduce_dim(op, inputs[0], *dim, *keepdim, true),
        Op::SumAll => Ok(Value::scalar(inputs[0].data().iter().sum())),
        Op::MeanAll => {
            let n = inputs[0].numel().max(1) as f64;
            Ok(Value::scalar(inputs[0].data().iter().sum::<f64>() / n))
        }
        Op::Softmax { dim } => softmax(op, inputs[0], *dim),
        Op::Reshape { shape } => {
            let dims: Result<Vec<i64>, _> = shape.iter().map(|d| dim_const(op, d)).collect();
            let dims: Vec<usize> = dims?.into_iter().map(|d| d as usize).collect();
            let n: usize = dims.iter().product();
            if n != inputs[0].numel() {
                return Err(shape_err(op, "reshape changes element count"));
            }
            Ok(Value::new(dims, inputs[0].data().to_vec()).expect("checked"))
        }
        Op::Transpose { d0, d1 } => {
            let mut perm: Vec<usize> = (0..inputs[0].rank()).collect();
            if *d0 >= perm.len() || *d1 >= perm.len() {
                return Err(shape_err(op, "dim out of range"));
            }
            perm.swap(*d0, *d1);
            Ok(permute(inputs[0], &perm))
        }
        Op::Permute { perm } => {
            if perm.len() != inputs[0].rank() {
                return Err(shape_err(op, "perm length mismatch"));
            }
            Ok(permute(inputs[0], perm))
        }
        Op::Slice { dim, start, end } => {
            let s = dim_const(op, start)? as usize;
            let e = dim_const(op, end)? as usize;
            slice(op, inputs[0], *dim, s, e)
        }
        Op::Concat { dim } => concat(op, inputs, *dim),
        Op::Pad { dim, before, after } => {
            let b = dim_const(op, before)? as usize;
            let a = dim_const(op, after)? as usize;
            pad(op, inputs[0], *dim, b, a)
        }
        Op::Matmul => matmul(op, inputs[0], inputs[1]),
        Op::Embedding => embedding(op, inputs[0], inputs[1]),
        Op::EmbeddingGrad { vocab } => embedding_grad(op, inputs[0], inputs[1], *vocab),
        Op::LayerNorm => layer_norm(op, inputs[0], inputs[1], Some(inputs[2])),
        Op::RmsNorm => rms_norm(op, inputs[0], inputs[1]),
        Op::Rope => rope(op, inputs[0], inputs[1], inputs[2]),
        Op::Attention { heads, causal } => {
            attention(op, inputs[0], inputs[1], inputs[2], *heads, *causal)
        }
        Op::MseLoss => {
            if inputs[0].shape() != inputs[1].shape() {
                return Err(shape_err(op, "pred/target shape mismatch"));
            }
            let n = inputs[0].numel().max(1) as f64;
            let sum: f64 = inputs[0]
                .data()
                .iter()
                .zip(inputs[1].data())
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            Ok(Value::scalar(sum / n))
        }
        Op::CrossEntropy => cross_entropy(op, inputs[0], inputs[1]),
        Op::AllReduce => {
            let mut acc = inputs[0].clone();
            for v in &inputs[1..] {
                if v.shape() != acc.shape() {
                    return Err(shape_err(op, "input shape mismatch"));
                }
                for (a, b) in acc.data_mut().iter_mut().zip(v.data()) {
                    *a += b;
                }
            }
            Ok(acc)
        }
        Op::AllGather { dim } => concat(op, inputs, *dim),
        Op::ReduceScatter { dim, rank, world } => {
            let summed = eval_op(&Op::AllReduce, inputs)?;
            let size = *summed
                .shape()
                .get(*dim)
                .ok_or_else(|| shape_err(op, "dim out of range"))?;
            if size % world != 0 {
                return Err(shape_err(op, "dim not divisible by world size"));
            }
            let chunk = size / world;
            slice(op, &summed, *dim, rank * chunk, (rank + 1) * chunk)
        }
    }
}

/// Evaluates a whole graph given values for its inputs.
///
/// Returns the environment mapping every tensor (inputs, intermediates and
/// outputs) to its value.
///
/// # Errors
///
/// Returns [`EvalError::MissingInput`] when a graph input has no value, or
/// any operator-level error.
pub fn eval_graph(
    graph: &Graph,
    inputs: &HashMap<TensorId, Value>,
) -> Result<HashMap<TensorId, Value>, EvalError> {
    let mut env: HashMap<TensorId, Value> = HashMap::new();
    for &i in graph.inputs() {
        let v = inputs
            .get(&i)
            .ok_or_else(|| EvalError::MissingInput(graph.tensor(i).name.clone()))?;
        env.insert(i, v.clone());
    }
    for node in graph.nodes() {
        let vals: Vec<&Value> = node.inputs.iter().map(|t| &env[t]).collect();
        let out = eval_op(&node.op, &vals)?;
        env.insert(node.output, out);
    }
    Ok(env)
}

// ----- helpers -----

fn unary(inputs: &[&Value], f: impl Fn(f64) -> f64) -> Result<Value, EvalError> {
    let mut out = inputs[0].clone();
    for v in out.data_mut() {
        *v = f(*v);
    }
    Ok(out)
}

fn broadcast_shape(op: &Op, a: &[usize], b: &[usize]) -> Result<Vec<usize>, EvalError> {
    let rank = a.len().max(b.len());
    let mut out = vec![0; rank];
    for (i, slot) in out.iter_mut().enumerate() {
        let x = a.len().checked_sub(rank - i).map(|j| a[j]).unwrap_or(1);
        let y = b.len().checked_sub(rank - i).map(|j| b[j]).unwrap_or(1);
        *slot = if x == y {
            x
        } else if x == 1 {
            y
        } else if y == 1 {
            x
        } else {
            return Err(shape_err(op, format!("cannot broadcast {a:?} with {b:?}")));
        };
    }
    Ok(out)
}

fn broadcast_index(full: &[usize], shape: &[usize]) -> Vec<usize> {
    let offset = full.len() - shape.len();
    shape
        .iter()
        .enumerate()
        .map(|(i, &d)| if d == 1 { 0 } else { full[offset + i] })
        .collect()
}

fn broadcast_binary(
    op: &Op,
    inputs: &[&Value],
    f: impl Fn(f64, f64) -> f64,
) -> Result<Value, EvalError> {
    let (a, b) = (inputs[0], inputs[1]);
    let shape = broadcast_shape(op, a.shape(), b.shape())?;
    let mut out = Value::zeros(shape);
    let indices: Vec<Vec<usize>> = out.indices().collect();
    for idx in indices {
        let av = a.get(&broadcast_index(&idx, a.shape()));
        let bv = b.get(&broadcast_index(&idx, b.shape()));
        out.set(&idx, f(av, bv));
    }
    Ok(out)
}

fn reduce_dim(
    op: &Op,
    x: &Value,
    dim: usize,
    keepdim: bool,
    mean: bool,
) -> Result<Value, EvalError> {
    if dim >= x.rank() {
        return Err(shape_err(op, "dim out of range"));
    }
    let mut shape = x.shape().to_vec();
    let n = shape[dim];
    shape[dim] = 1;
    let mut out = Value::zeros(shape.clone());
    let indices: Vec<Vec<usize>> = x.indices().collect();
    for idx in indices {
        let mut oidx = idx.clone();
        oidx[dim] = 0;
        let cur = out.get(&oidx);
        out.set(&oidx, cur + x.get(&idx));
    }
    if mean && n > 0 {
        for v in out.data_mut() {
            *v /= n as f64;
        }
    }
    if keepdim {
        Ok(out)
    } else {
        let mut s = shape;
        s.remove(dim);
        Ok(Value::new(s, out.data().to_vec()).expect("consistent"))
    }
}

fn softmax(op: &Op, x: &Value, dim: usize) -> Result<Value, EvalError> {
    if dim >= x.rank() {
        return Err(shape_err(op, "dim out of range"));
    }
    let mut out = x.clone();
    // Iterate all "rows" along `dim`.
    let mut outer = x.shape().to_vec();
    let n = outer.remove(dim);
    let iter = Value::zeros(outer.clone());
    let rows: Vec<Vec<usize>> = iter.indices().collect();
    for row in rows {
        let mut full = row.clone();
        full.insert(dim, 0);
        let mut max = f64::NEG_INFINITY;
        for k in 0..n {
            full[dim] = k;
            max = max.max(x.get(&full));
        }
        let mut denom = 0.0;
        for k in 0..n {
            full[dim] = k;
            denom += (x.get(&full) - max).exp();
        }
        for k in 0..n {
            full[dim] = k;
            out.set(&full, (x.get(&full) - max).exp() / denom);
        }
    }
    Ok(out)
}

fn permute(x: &Value, perm: &[usize]) -> Value {
    let shape: Vec<usize> = perm.iter().map(|&p| x.shape()[p]).collect();
    let mut out = Value::zeros(shape);
    let indices: Vec<Vec<usize>> = out.indices().collect();
    for idx in indices {
        let src: Vec<usize> = {
            let mut s = vec![0; idx.len()];
            for (i, &p) in perm.iter().enumerate() {
                s[p] = idx[i];
            }
            s
        };
        out.set(&idx, x.get(&src));
    }
    out
}

fn slice(op: &Op, x: &Value, dim: usize, start: usize, end: usize) -> Result<Value, EvalError> {
    if dim >= x.rank() || end > x.shape()[dim] || start > end {
        return Err(shape_err(
            op,
            format!("invalid slice [{start},{end}) on {:?}", x.shape()),
        ));
    }
    let mut shape = x.shape().to_vec();
    shape[dim] = end - start;
    let mut out = Value::zeros(shape);
    let indices: Vec<Vec<usize>> = out.indices().collect();
    for idx in indices {
        let mut src = idx.clone();
        src[dim] += start;
        out.set(&idx, x.get(&src));
    }
    Ok(out)
}

fn concat(op: &Op, inputs: &[&Value], dim: usize) -> Result<Value, EvalError> {
    let first = inputs[0];
    if dim >= first.rank() {
        return Err(shape_err(op, "dim out of range"));
    }
    let mut total = 0;
    for v in inputs {
        if v.rank() != first.rank() {
            return Err(shape_err(op, "rank mismatch"));
        }
        for i in 0..first.rank() {
            if i != dim && v.shape()[i] != first.shape()[i] {
                return Err(shape_err(op, "non-concat dim mismatch"));
            }
        }
        total += v.shape()[dim];
    }
    let mut shape = first.shape().to_vec();
    shape[dim] = total;
    let mut out = Value::zeros(shape);
    let mut offset = 0;
    for v in inputs {
        let indices: Vec<Vec<usize>> = v.indices().collect();
        for idx in indices {
            let mut dst = idx.clone();
            dst[dim] += offset;
            out.set(&dst, v.get(&idx));
        }
        offset += v.shape()[dim];
    }
    Ok(out)
}

fn pad(op: &Op, x: &Value, dim: usize, before: usize, after: usize) -> Result<Value, EvalError> {
    if dim >= x.rank() {
        return Err(shape_err(op, "dim out of range"));
    }
    let mut shape = x.shape().to_vec();
    shape[dim] += before + after;
    let mut out = Value::zeros(shape);
    let indices: Vec<Vec<usize>> = x.indices().collect();
    for idx in indices {
        let mut dst = idx.clone();
        dst[dim] += before;
        out.set(&dst, x.get(&idx));
    }
    Ok(out)
}

fn matmul(op: &Op, a: &Value, b: &Value) -> Result<Value, EvalError> {
    if a.rank() < 2 || b.rank() < 2 {
        return Err(shape_err(op, "matmul needs rank >= 2"));
    }
    let (m, k1) = (a.shape()[a.rank() - 2], a.shape()[a.rank() - 1]);
    let (k2, n) = (b.shape()[b.rank() - 2], b.shape()[b.rank() - 1]);
    if k1 != k2 {
        return Err(shape_err(op, "inner dims differ"));
    }
    let abatch = &a.shape()[..a.rank() - 2];
    let bbatch = &b.shape()[..b.rank() - 2];
    let batch = broadcast_shape(op, abatch, bbatch)?;
    let mut shape = batch.clone();
    shape.extend([m, n]);
    let mut out = Value::zeros(shape);
    let biter = Value::zeros(batch.clone());
    let batches: Vec<Vec<usize>> = if batch.is_empty() {
        vec![vec![]]
    } else {
        biter.indices().collect()
    };
    for bidx in batches {
        let aidx_base = broadcast_index(&bidx, abatch);
        let bidx_base = broadcast_index(&bidx, bbatch);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for k in 0..k1 {
                    let mut ai = aidx_base.clone();
                    ai.extend([i, k]);
                    let mut bi = bidx_base.clone();
                    bi.extend([k, j]);
                    acc += a.get(&ai) * b.get(&bi);
                }
                let mut oi = bidx.clone();
                oi.extend([i, j]);
                out.set(&oi, acc);
            }
        }
    }
    Ok(out)
}

fn embedding(op: &Op, w: &Value, ids: &Value) -> Result<Value, EvalError> {
    if w.rank() != 2 {
        return Err(shape_err(op, "weight must be rank 2"));
    }
    let (v, h) = (w.shape()[0], w.shape()[1]);
    let mut shape = ids.shape().to_vec();
    shape.push(h);
    let mut out = Value::zeros(shape);
    let indices: Vec<Vec<usize>> = ids.indices().collect();
    for idx in indices {
        let row = ids.get(&idx).round() as usize;
        if row >= v {
            return Err(shape_err(op, format!("index {row} out of vocab {v}")));
        }
        for j in 0..h {
            let mut dst = idx.clone();
            dst.push(j);
            out.set(&dst, w.get(&[row, j]));
        }
    }
    Ok(out)
}

fn embedding_grad(op: &Op, ids: &Value, grad: &Value, vocab: usize) -> Result<Value, EvalError> {
    if grad.rank() != ids.rank() + 1 {
        return Err(shape_err(op, "grad rank must be ids rank + 1"));
    }
    let h = grad.shape()[grad.rank() - 1];
    if grad.numel() / h.max(1) != ids.numel() {
        return Err(shape_err(op, "grad batch dims mismatch"));
    }
    let mut out = Value::zeros(vec![vocab, h]);
    for (row, idx) in ids.data().iter().enumerate() {
        let v = idx.round() as usize;
        if v >= vocab {
            return Err(shape_err(op, format!("index {v} out of vocab {vocab}")));
        }
        for j in 0..h {
            out.data_mut()[v * h + j] += grad.data()[row * h + j];
        }
    }
    Ok(out)
}

const NORM_EPS: f64 = 1e-5;

fn layer_norm(op: &Op, x: &Value, w: &Value, b: Option<&Value>) -> Result<Value, EvalError> {
    if x.rank() == 0 {
        return Err(shape_err(op, "rank must be >= 1"));
    }
    let h = x.shape()[x.rank() - 1];
    if w.shape() != [h] {
        return Err(shape_err(op, "weight size mismatch"));
    }
    let mut out = x.clone();
    let rows = x.numel() / h.max(1);
    for r in 0..rows {
        let base = r * h;
        let row = &x.data()[base..base + h];
        let mean = row.iter().sum::<f64>() / h as f64;
        let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / h as f64;
        let rstd = 1.0 / (var + NORM_EPS).sqrt();
        for (j, &xv) in row.iter().enumerate() {
            let normed = (xv - mean) * rstd;
            let bias = b.map(|bb| bb.data()[j]).unwrap_or(0.0);
            out.data_mut()[base + j] = normed * w.data()[j] + bias;
        }
    }
    Ok(out)
}

fn rms_norm(op: &Op, x: &Value, w: &Value) -> Result<Value, EvalError> {
    if x.rank() == 0 {
        return Err(shape_err(op, "rank must be >= 1"));
    }
    let h = x.shape()[x.rank() - 1];
    if w.shape() != [h] {
        return Err(shape_err(op, "weight size mismatch"));
    }
    let mut out = x.clone();
    let rows = x.numel() / h.max(1);
    for r in 0..rows {
        let base = r * h;
        let row = &x.data()[base..base + h];
        let ms = row.iter().map(|v| v * v).sum::<f64>() / h as f64;
        let rrms = 1.0 / (ms + NORM_EPS).sqrt();
        for (j, &xv) in row.iter().enumerate() {
            out.data_mut()[base + j] = xv * rrms * w.data()[j];
        }
    }
    Ok(out)
}

fn rope(op: &Op, x: &Value, cos: &Value, sin: &Value) -> Result<Value, EvalError> {
    // x: [..., s, h]; cos/sin: [s, h]. Interleaved-pair formulation (the
    // original RoFormer convention): element 2i pairs with 2i+1. Unlike
    // rotate-half, this convention commutes with even-boundary hidden-dim
    // splits, which is what lets tensor-parallel head sharding slice the
    // tables — the property the rope lemmas encode.
    if x.rank() < 2 || cos.rank() != 2 || cos.shape() != sin.shape() {
        return Err(shape_err(op, "bad rope inputs"));
    }
    let s = x.shape()[x.rank() - 2];
    let h = x.shape()[x.rank() - 1];
    if cos.shape() != [s, h] || !h.is_multiple_of(2) {
        return Err(shape_err(op, "cos table mismatch or odd head dim"));
    }
    let mut out = x.clone();
    let rows = x.numel() / (s * h);
    for r in 0..rows {
        for t in 0..s {
            let base = (r * s + t) * h;
            for j in (0..h).step_by(2) {
                let (x0, x1) = (x.data()[base + j], x.data()[base + j + 1]);
                let (c0, s0) = (cos.get(&[t, j]), sin.get(&[t, j]));
                let (c1, s1) = (cos.get(&[t, j + 1]), sin.get(&[t, j + 1]));
                out.data_mut()[base + j] = x0 * c0 - x1 * s0;
                out.data_mut()[base + j + 1] = x1 * c1 + x0 * s1;
            }
        }
    }
    Ok(out)
}

fn attention(
    op: &Op,
    q: &Value,
    k: &Value,
    v: &Value,
    heads: usize,
    causal: bool,
) -> Result<Value, EvalError> {
    if q.rank() < 2 || q.shape() != k.shape() || q.shape() != v.shape() {
        return Err(shape_err(op, "q/k/v shapes must match with rank >= 2"));
    }
    let h = q.shape()[q.rank() - 1];
    let s = q.shape()[q.rank() - 2];
    if heads == 0 || !h.is_multiple_of(heads) {
        return Err(shape_err(op, "hidden not divisible by heads"));
    }
    let hd = h / heads;
    let scale = 1.0 / (hd as f64).sqrt();
    let batches = q.numel() / (s * h);
    let mut out = Value::zeros(q.shape().to_vec());
    for b in 0..batches {
        for head in 0..heads {
            let col0 = head * hd;
            // scores[i][j] = q_i · k_j / sqrt(hd), masked, softmaxed; then ×V.
            for i in 0..s {
                let qbase = (b * s + i) * h + col0;
                let mut scores = vec![f64::NEG_INFINITY; s];
                let limit = if causal { i + 1 } else { s };
                for (j, score) in scores.iter_mut().enumerate().take(limit) {
                    let kbase = (b * s + j) * h + col0;
                    let mut dot = 0.0;
                    for c in 0..hd {
                        dot += q.data()[qbase + c] * k.data()[kbase + c];
                    }
                    *score = dot * scale;
                }
                let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let mut denom = 0.0;
                for sc in &mut scores {
                    *sc = (*sc - max).exp();
                    denom += *sc;
                }
                for c in 0..hd {
                    let mut acc = 0.0;
                    for (j, sc) in scores.iter().enumerate() {
                        let vbase = (b * s + j) * h + col0;
                        acc += sc / denom * v.data()[vbase + c];
                    }
                    out.data_mut()[qbase + c] = acc;
                }
            }
        }
    }
    Ok(out)
}

fn cross_entropy(op: &Op, logits: &Value, targets: &Value) -> Result<Value, EvalError> {
    if logits.rank() != targets.rank() + 1 {
        return Err(shape_err(op, "logits rank must be targets rank + 1"));
    }
    let v = logits.shape()[logits.rank() - 1];
    let rows = logits.numel() / v.max(1);
    if rows != targets.numel() {
        return Err(shape_err(op, "batch dims mismatch"));
    }
    let mut total = 0.0;
    for r in 0..rows {
        let base = r * v;
        let row = &logits.data()[base..base + v];
        let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let logsum = row.iter().map(|x| (x - max).exp()).sum::<f64>().ln() + max;
        let t = targets.data()[r].round() as usize;
        if t >= v {
            return Err(shape_err(op, format!("target {t} out of vocab {v}")));
        }
        total += logsum - row[t];
    }
    Ok(Value::scalar(total / rows as f64))
}
