//! Dense row-major tensors.

use std::fmt;

/// A dense, row-major, `f64` tensor value.
///
/// Integer tensors (token ids) are stored as floats holding exact small
/// integers — the interpreter rounds where an integer is semantically
/// required (embedding/cross-entropy indices).
///
/// # Examples
///
/// ```
/// use entangle_runtime::Value;
///
/// let v = Value::new(vec![2, 3], (0..6).map(|i| i as f64).collect()).unwrap();
/// assert_eq!(v.shape(), &[2, 3]);
/// assert_eq!(v.get(&[1, 2]), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Value {
    shape: Vec<usize>,
    data: Vec<f64>,
}

impl Value {
    /// Creates a value; `data.len()` must equal the shape's element count.
    pub fn new(shape: Vec<usize>, data: Vec<f64>) -> Option<Value> {
        if shape.iter().product::<usize>() == data.len() {
            Some(Value { shape, data })
        } else {
            None
        }
    }

    /// A scalar (rank-0) value.
    pub fn scalar(v: f64) -> Value {
        Value {
            shape: vec![],
            data: vec![v],
        }
    }

    /// A zero-filled value.
    pub fn zeros(shape: Vec<usize>) -> Value {
        let n = shape.iter().product();
        Value {
            shape,
            data: vec![0.0; n],
        }
    }

    /// The shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// The flat data, row-major.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// The scalar value of a rank-0 (or single-element) tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has more than one element.
    pub fn as_scalar(&self) -> f64 {
        assert_eq!(self.data.len(), 1, "as_scalar on non-scalar value");
        self.data[0]
    }

    /// Row-major strides.
    pub fn strides(&self) -> Vec<usize> {
        let mut s = vec![1; self.shape.len()];
        for i in (0..self.shape.len().saturating_sub(1)).rev() {
            s[i] = s[i + 1] * self.shape[i + 1];
        }
        s
    }

    /// Flat offset of a multi-index.
    ///
    /// # Panics
    ///
    /// Panics on rank or bounds mismatch.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(index.len(), self.shape.len(), "index rank mismatch");
        let strides = self.strides();
        let mut off = 0;
        for (i, (&ix, &dim)) in index.iter().zip(&self.shape).enumerate() {
            assert!(ix < dim, "index {ix} out of bounds for dim {i} ({dim})");
            off += ix * strides[i];
        }
        off
    }

    /// Element at a multi-index.
    pub fn get(&self, index: &[usize]) -> f64 {
        self.data[self.offset(index)]
    }

    /// Sets the element at a multi-index.
    pub fn set(&mut self, index: &[usize], v: f64) {
        let off = self.offset(index);
        self.data[off] = v;
    }

    /// Iterates all multi-indices of this shape in row-major order.
    pub fn indices(&self) -> IndexIter {
        IndexIter::new(self.shape.clone())
    }

    /// Max absolute difference to another value; `None` on shape mismatch.
    pub fn max_abs_diff(&self, other: &Value) -> Option<f64> {
        if self.shape != other.shape {
            return None;
        }
        Some(
            self.data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max),
        )
    }

    /// `true` when every element differs by at most `tol`.
    pub fn allclose(&self, other: &Value, tol: f64) -> bool {
        self.max_abs_diff(other).is_some_and(|d| d <= tol)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Value{:?}", self.shape)?;
        if self.data.len() <= 8 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

/// Row-major multi-index iterator over a shape.
#[derive(Debug, Clone)]
pub struct IndexIter {
    shape: Vec<usize>,
    next: Option<Vec<usize>>,
}

impl IndexIter {
    fn new(shape: Vec<usize>) -> IndexIter {
        let next = if shape.contains(&0) {
            None
        } else {
            Some(vec![0; shape.len()])
        };
        IndexIter { shape, next }
    }
}

impl Iterator for IndexIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        let current = self.next.clone()?;
        // Advance.
        let mut idx = current.clone();
        let mut carried = true;
        for i in (0..self.shape.len()).rev() {
            idx[i] += 1;
            if idx[i] < self.shape[i] {
                carried = false;
                break;
            }
            idx[i] = 0;
        }
        self.next = if carried || self.shape.is_empty() {
            None
        } else {
            Some(idx)
        };
        Some(current)
    }
}
