use std::collections::HashMap;

use entangle_ir::{DType, Dim, Graph, GraphBuilder, Op, TensorId};
use entangle_runtime::{eval_graph, random_ids, random_value, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{backward, AutodiffError};

/// Central finite differences of the loss with respect to `input`, computed
/// on the *forward* graph — the ground truth every VJP rule must match.
fn finite_diff(
    graph: &Graph,
    inputs: &HashMap<TensorId, Value>,
    loss: TensorId,
    wrt: TensorId,
    eps: f64,
) -> Value {
    let mut grad = Value::zeros(inputs[&wrt].shape().to_vec());
    for i in 0..grad.numel() {
        let mut plus = inputs.clone();
        plus.get_mut(&wrt).unwrap().data_mut()[i] += eps;
        let mut minus = inputs.clone();
        minus.get_mut(&wrt).unwrap().data_mut()[i] -= eps;
        let lp = eval_graph(graph, &plus).unwrap()[&loss].as_scalar();
        let lm = eval_graph(graph, &minus).unwrap()[&loss].as_scalar();
        grad.data_mut()[i] = (lp - lm) / (2.0 * eps);
    }
    grad
}

/// Checks every produced gradient against finite differences.
fn check_grads(graph: &Graph, loss: TensorId, seed: u64, tol: f64) {
    let grads = backward(graph, loss).unwrap_or_else(|e| panic!("backward failed: {e}"));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut inputs = HashMap::new();
    for &i in graph.inputs() {
        let t = graph.tensor(i);
        let dims: Vec<usize> = t
            .shape
            .as_concrete()
            .unwrap()
            .iter()
            .map(|&d| d as usize)
            .collect();
        let v = match t.dtype {
            DType::I64 => random_ids(&mut rng, &dims, 4),
            _ => random_value(&mut rng, &dims),
        };
        inputs.insert(i, v);
    }
    let env = eval_graph(&grads.graph, &inputs).expect("extended graph evaluates");
    for &input in graph.inputs() {
        let Some(g) = grads.grad_of(input) else {
            continue;
        };
        let analytic = &env[&g];
        let numeric = finite_diff(graph, &inputs, loss, input, 1e-5);
        assert!(
            analytic.allclose(&numeric, tol),
            "gradient mismatch for {} (max diff {:?})",
            graph.tensor(input).name,
            analytic.max_abs_diff(&numeric)
        );
    }
}

fn unary_chain(op: Op) -> (Graph, TensorId) {
    let mut g = GraphBuilder::new("unary");
    let x = g.input("x", &[2, 3], DType::F32);
    let y = g.apply("y", op, &[x]).unwrap();
    // Square before reducing so the gradient isn't constant.
    let sq = g.apply("sq", Op::Mul, &[y, y]).unwrap();
    let loss = g.apply("loss", Op::MeanAll, &[sq]).unwrap();
    g.mark_output(loss);
    (g.finish().unwrap(), loss)
}

#[test]
fn unary_gradients_match_finite_differences() {
    for (i, op) in [
        Op::Neg,
        Op::Exp,
        Op::Tanh,
        Op::Sigmoid,
        Op::Gelu,
        Op::Silu,
        Op::Relu,
        Op::Sin,
        Op::Cos,
        Op::Identity,
        Op::ScalarMul { numer: 3, denom: 7 },
    ]
    .into_iter()
    .enumerate()
    {
        let (graph, loss) = unary_chain(op.clone());
        check_grads(&graph, loss, 100 + i as u64, 2e-5);
    }
}

#[test]
fn sqrt_rsqrt_gradients() {
    // Positive inputs only: shift x into (1, 2).
    for (i, op) in [Op::Sqrt, Op::Rsqrt].into_iter().enumerate() {
        let mut g = GraphBuilder::new("posdomain");
        let x = g.input("x", &[2, 2], DType::F32);
        let sq = g.apply("sq", Op::Mul, &[x, x]).unwrap();
        let ones = g.apply("ones", Op::OnesLike, &[sq]).unwrap();
        let shifted = g.apply("shift", Op::Add, &[sq, ones]).unwrap();
        let y = g.apply("y", op.clone(), &[shifted]).unwrap();
        let loss = g.apply("loss", Op::SumAll, &[y]).unwrap();
        g.mark_output(loss);
        let graph = g.finish().unwrap();
        check_grads(&graph, loss, 200 + i as u64, 1e-4);
    }
}

#[test]
fn binary_gradients_with_broadcasting() {
    for (i, op) in [Op::Add, Op::Sub, Op::Mul, Op::Div].into_iter().enumerate() {
        let mut g = GraphBuilder::new("binary");
        let a = g.input("a", &[2, 3], DType::F32);
        let bcast = g.input("b", &[3], DType::F32);
        // Keep divisors away from zero: b' = b² + 1.
        let b2 = g.apply("b2", Op::Mul, &[bcast, bcast]).unwrap();
        let ones = g.apply("ones", Op::OnesLike, &[b2]).unwrap();
        let safe = g.apply("safe", Op::Add, &[b2, ones]).unwrap();
        let y = g.apply("y", op.clone(), &[a, safe]).unwrap();
        let loss = g.apply("loss", Op::MeanAll, &[y]).unwrap();
        g.mark_output(loss);
        let graph = g.finish().unwrap();
        check_grads(&graph, loss, 300 + i as u64, 1e-4);
    }
}

#[test]
fn matmul_gradients() {
    let mut g = GraphBuilder::new("mm");
    let a = g.input("a", &[3, 4], DType::F32);
    let b = g.input("b", &[4, 2], DType::F32);
    let y = g.apply("y", Op::Matmul, &[a, b]).unwrap();
    let loss = g.apply("loss", Op::MeanAll, &[y]).unwrap();
    g.mark_output(loss);
    let graph = g.finish().unwrap();
    check_grads(&graph, loss, 7, 1e-5);
}

#[test]
fn batched_matmul_with_broadcast_rhs() {
    let mut g = GraphBuilder::new("bmm");
    let a = g.input("a", &[2, 3, 4], DType::F32);
    let b = g.input("b", &[4, 2], DType::F32);
    let y = g.apply("y", Op::Matmul, &[a, b]).unwrap();
    let loss = g.apply("loss", Op::SumAll, &[y]).unwrap();
    g.mark_output(loss);
    let graph = g.finish().unwrap();
    check_grads(&graph, loss, 8, 1e-5);
}

#[test]
fn reduction_and_softmax_gradients() {
    let mut g = GraphBuilder::new("reductions");
    let x = g.input("x", &[2, 4], DType::F32);
    let sm = g.apply("sm", Op::Softmax { dim: 1 }, &[x]).unwrap();
    let sd = g
        .apply(
            "sd",
            Op::SumDim {
                dim: 0,
                keepdim: false,
            },
            &[sm],
        )
        .unwrap();
    let md = g
        .apply(
            "md",
            Op::MeanDim {
                dim: 0,
                keepdim: true,
            },
            &[sd],
        )
        .unwrap();
    let sq = g.apply("sq", Op::Mul, &[md, md]).unwrap();
    let loss = g.apply("loss", Op::SumAll, &[sq]).unwrap();
    g.mark_output(loss);
    let graph = g.finish().unwrap();
    check_grads(&graph, loss, 9, 1e-5);
}

#[test]
fn slice_concat_pad_transpose_gradients() {
    let mut g = GraphBuilder::new("movement");
    let x = g.input("x", &[4, 3], DType::F32);
    let top = g
        .apply(
            "top",
            Op::Slice {
                dim: 0,
                start: Dim::from(0),
                end: Dim::from(2),
            },
            &[x],
        )
        .unwrap();
    let bottom = g
        .apply(
            "bottom",
            Op::Slice {
                dim: 0,
                start: Dim::from(2),
                end: Dim::from(4),
            },
            &[x],
        )
        .unwrap();
    let swapped = g
        .apply("swapped", Op::Concat { dim: 0 }, &[bottom, top])
        .unwrap();
    let padded = g
        .apply(
            "padded",
            Op::Pad {
                dim: 1,
                before: Dim::from(1),
                after: Dim::from(0),
            },
            &[swapped],
        )
        .unwrap();
    let t = g
        .apply("t", Op::Transpose { d0: 0, d1: 1 }, &[padded])
        .unwrap();
    let r = g
        .apply(
            "r",
            Op::Reshape {
                shape: vec![Dim::from(2), Dim::from(8)],
            },
            &[t],
        )
        .unwrap();
    let sq = g.apply("sq", Op::Mul, &[r, r]).unwrap();
    let loss = g.apply("loss", Op::MeanAll, &[sq]).unwrap();
    g.mark_output(loss);
    let graph = g.finish().unwrap();
    check_grads(&graph, loss, 10, 1e-5);
}

#[test]
fn embedding_gradient_scatter_adds() {
    let mut g = GraphBuilder::new("emb");
    let w = g.input("w", &[4, 3], DType::F32);
    let ids = g.input("ids", &[5], DType::I64);
    let e = g.apply("e", Op::Embedding, &[w, ids]).unwrap();
    let sq = g.apply("sq", Op::Mul, &[e, e]).unwrap();
    let loss = g.apply("loss", Op::SumAll, &[sq]).unwrap();
    g.mark_output(loss);
    let graph = g.finish().unwrap();
    check_grads(&graph, loss, 11, 1e-5);
}

#[test]
fn mse_regression_matches_closed_form() {
    // The generated backward must agree with the hand-written
    // regression_training graph: grad_w = (2/N) xᵀ(pred − y).
    let cfg = entangle_models::RegressionConfig::tiny();
    let fwd = entangle_models::regression(&cfg);
    let loss = fwd.outputs()[0];
    let grads = backward(&fwd, loss).unwrap();
    check_grads(&fwd, loss, 12, 1e-5);

    // Shapes of the produced gradients match the parameters.
    let w = fwd.tensor_by_name("w").unwrap().id;
    let gw = grads.grad_of(w).unwrap();
    assert_eq!(
        grads.graph.tensor(gw).shape,
        fwd.tensor(w).shape,
        "gradient shape matches parameter shape"
    );
}

#[test]
fn fan_out_accumulates() {
    // x feeds two branches; the adjoint must be the sum of both.
    let mut g = GraphBuilder::new("fanout");
    let x = g.input("x", &[3], DType::F32);
    let a = g.apply("a", Op::Tanh, &[x]).unwrap();
    let b = g.apply("b", Op::Sigmoid, &[x]).unwrap();
    let s = g.apply("s", Op::Add, &[a, b]).unwrap();
    let sq = g.apply("sq", Op::Mul, &[s, s]).unwrap();
    let loss = g.apply("loss", Op::SumAll, &[sq]).unwrap();
    g.mark_output(loss);
    let graph = g.finish().unwrap();
    check_grads(&graph, loss, 13, 1e-5);
}

#[test]
fn non_scalar_loss_rejected() {
    let mut g = GraphBuilder::new("vec");
    let x = g.input("x", &[3], DType::F32);
    let y = g.apply("y", Op::Tanh, &[x]).unwrap();
    g.mark_output(y);
    let graph = g.finish().unwrap();
    assert!(matches!(
        backward(&graph, y),
        Err(AutodiffError::NotScalarLoss(_))
    ));
}

#[test]
fn rms_norm_gradients_match_finite_differences() {
    let mut g = GraphBuilder::new("rms");
    let x = g.input("x", &[3, 4], DType::F32);
    let w = g.input("w", &[4], DType::F32);
    let y = g.apply("y", Op::RmsNorm, &[x, w]).unwrap();
    let sq = g.apply("sq", Op::Mul, &[y, y]).unwrap();
    let loss = g.apply("loss", Op::MeanAll, &[sq]).unwrap();
    g.mark_output(loss);
    let graph = g.finish().unwrap();
    check_grads(&graph, loss, 40, 1e-4);
}

#[test]
fn layer_norm_gradients_match_finite_differences() {
    let mut g = GraphBuilder::new("ln");
    let x = g.input("x", &[2, 6], DType::F32);
    let w = g.input("w", &[6], DType::F32);
    let bias = g.input("b", &[6], DType::F32);
    let y = g.apply("y", Op::LayerNorm, &[x, w, bias]).unwrap();
    let sq = g.apply("sq", Op::Mul, &[y, y]).unwrap();
    let loss = g.apply("loss", Op::SumAll, &[sq]).unwrap();
    g.mark_output(loss);
    let graph = g.finish().unwrap();
    check_grads(&graph, loss, 41, 1e-4);
}

#[test]
fn norm_mlp_training_step_differentiates() {
    // A small "norm + MLP" block: the shape the bug 5/9 gradient scenarios
    // live in, now generated instead of hand-written.
    let mut g = GraphBuilder::new("norm-mlp");
    let x = g.input("x", &[4, 6], DType::F32);
    let w_ln = g.input("w_ln", &[6], DType::F32);
    let w1 = g.input("w1", &[6, 8], DType::F32);
    let w2 = g.input("w2", &[8, 6], DType::F32);
    let n = g.apply("n", Op::RmsNorm, &[x, w_ln]).unwrap();
    let h = g.apply("h", Op::Matmul, &[n, w1]).unwrap();
    let a = g.apply("a", Op::Silu, &[h]).unwrap();
    let o = g.apply("o", Op::Matmul, &[a, w2]).unwrap();
    let res = g.apply("res", Op::Add, &[x, o]).unwrap();
    let sq = g.apply("sq", Op::Mul, &[res, res]).unwrap();
    let loss = g.apply("loss", Op::SumAll, &[sq]).unwrap();
    g.mark_output(loss);
    let graph = g.finish().unwrap();
    check_grads(&graph, loss, 42, 1e-4);
}

#[test]
fn maximum_gradients_match_finite_differences() {
    let mut g = GraphBuilder::new("max");
    let a = g.input("a", &[3, 3], DType::F32);
    let b = g.input("b", &[3, 3], DType::F32);
    let y = g.apply("y", Op::Maximum, &[a, b]).unwrap();
    let sq = g.apply("sq", Op::Mul, &[y, y]).unwrap();
    let loss = g.apply("loss", Op::MeanAll, &[sq]).unwrap();
    g.mark_output(loss);
    let graph = g.finish().unwrap();
    check_grads(&graph, loss, 50, 1e-4);
}

#[test]
fn rope_gradient_is_the_inverse_rotation() {
    // Build real interleaved tables (cos²+sin²=1 per pair) so the rope in
    // the graph is an honest rotation.
    let (s, h) = (4usize, 4usize);
    let mut g = GraphBuilder::new("rope");
    let x = g.input("x", &[2, s as i64, h as i64], DType::F32);
    let cos = g.input("cos", &[s as i64, h as i64], DType::F32);
    let sin = g.input("sin", &[s as i64, h as i64], DType::F32);
    let y = g.apply("y", Op::Rope, &[x, cos, sin]).unwrap();
    let sq = g.apply("sq", Op::Mul, &[y, y]).unwrap();
    let loss = g.apply("loss", Op::SumAll, &[sq]).unwrap();
    g.mark_output(loss);
    let graph = g.finish().unwrap();

    // Custom input env: tables fixed, x random; finite-diff only w.r.t. x.
    let grads = backward(&graph, loss).unwrap();
    let mut rng = StdRng::seed_from_u64(51);
    let mut inputs = HashMap::new();
    let (cv, sv) = entangle_models::rope_tables(s, h);
    inputs.insert(x, random_value(&mut rng, &[2, s, h]));
    inputs.insert(cos, Value::new(vec![s, h], cv).unwrap());
    inputs.insert(sin, Value::new(vec![s, h], sv).unwrap());
    let env = eval_graph(&grads.graph, &inputs).unwrap();
    let gx = grads.grad_of(x).expect("x gets a gradient");
    let analytic = &env[&gx];
    let numeric = finite_diff(&graph, &inputs, loss, x, 1e-5);
    assert!(
        analytic.allclose(&numeric, 1e-4),
        "rope grad mismatch: {:?}",
        analytic.max_abs_diff(&numeric)
    );
    // The tables are constants: no gradients produced.
    assert!(grads.grad_of(cos).is_none());
    assert!(grads.grad_of(sin).is_none());
}

#[test]
fn unsupported_ops_reported_by_name() {
    let mut g = GraphBuilder::new("attn");
    let q = g.input("q", &[2, 4, 8], DType::F32);
    let y = g
        .apply(
            "y",
            Op::Attention {
                heads: 2,
                causal: false,
            },
            &[q, q, q],
        )
        .unwrap();
    let loss = g.apply("loss", Op::SumAll, &[y]).unwrap();
    g.mark_output(loss);
    let graph = g.finish().unwrap();
    match backward(&graph, loss) {
        Err(AutodiffError::Unsupported(msg)) => assert!(msg.contains("attention"), "{msg}"),
        other => panic!("expected Unsupported, got {:?}", other.map(|_| ())),
    }
}

#[test]
fn unused_branches_get_no_gradient_nodes() {
    // An input not on any loss path gets no gradient output.
    let mut g = GraphBuilder::new("dead");
    let x = g.input("x", &[2], DType::F32);
    let dead = g.input("dead", &[2], DType::F32);
    let _unused = g.apply("unused", Op::Tanh, &[dead]).unwrap();
    let sq = g.apply("sq", Op::Mul, &[x, x]).unwrap();
    let loss = g.apply("loss", Op::SumAll, &[sq]).unwrap();
    g.mark_output(loss);
    let graph = g.finish().unwrap();
    let grads = backward(&graph, loss).unwrap();
    assert!(grads.grad_of(x).is_some());
    assert!(grads.grad_of(dead).is_none());
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Random chains of differentiable unary/binary steps always match
        /// finite differences.
        #[test]
        fn random_chains_differentiate_correctly(
            ops in proptest::collection::vec(0u8..6, 1..5),
            seed in 0u64..1000,
        ) {
            let mut g = GraphBuilder::new("chain");
            let mut x = g.input("x", &[2, 3], DType::F32);
            let w = g.input("w", &[3], DType::F32);
            for (i, op) in ops.iter().enumerate() {
                x = match op {
                    0 => g.apply(&format!("t{i}"), Op::Tanh, &[x]).unwrap(),
                    1 => g.apply(&format!("s{i}"), Op::Sigmoid, &[x]).unwrap(),
                    2 => g.apply(&format!("g{i}"), Op::Gelu, &[x]).unwrap(),
                    3 => g.apply(&format!("a{i}"), Op::Add, &[x, w]).unwrap(),
                    4 => g.apply(&format!("m{i}"), Op::Mul, &[x, w]).unwrap(),
                    _ => g
                        .apply(&format!("k{i}"), Op::ScalarMul { numer: 1, denom: 2 }, &[x])
                        .unwrap(),
                };
            }
            let loss = g.apply("loss", Op::MeanAll, &[x]).unwrap();
            g.mark_output(loss);
            let graph = g.finish().unwrap();
            check_grads(&graph, loss, seed, 1e-4);
        }
    }
}
