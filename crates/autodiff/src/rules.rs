//! The backward pass: reverse topological accumulation of vector-Jacobian
//! products, expressed as ordinary IR operators.

use std::collections::HashMap;
use std::fmt;

use entangle_ir::{Dim, Graph, IrError, Node, Op, Shape, TensorId};

/// A forward graph extended with explicit gradient computation.
#[derive(Debug, Clone)]
pub struct GradGraph {
    /// The extended graph: the forward nodes plus gradient nodes; gradients
    /// of graph inputs are additional outputs.
    pub graph: Graph,
    grads: HashMap<TensorId, TensorId>,
}

impl GradGraph {
    /// The gradient tensor for a forward-graph input, if one was produced
    /// (integer inputs like token ids get none).
    pub fn grad_of(&self, input: TensorId) -> Option<TensorId> {
        self.grads.get(&input).copied()
    }

    /// Iterates `(input, gradient)` pairs.
    pub fn grads(&self) -> impl Iterator<Item = (TensorId, TensorId)> + '_ {
        self.grads.iter().map(|(a, b)| (*a, *b))
    }
}

/// Differentiation failure.
#[derive(Debug)]
pub enum AutodiffError {
    /// The loss tensor is not a rank-0 tensor of this graph.
    NotScalarLoss(String),
    /// An operator on the path to the loss has no VJP rule.
    Unsupported(String),
    /// Gradient construction produced an invalid graph (a rule bug).
    Ir(IrError),
}

impl fmt::Display for AutodiffError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AutodiffError::NotScalarLoss(m) => write!(f, "loss must be a scalar tensor: {m}"),
            AutodiffError::Unsupported(m) => write!(f, "no VJP rule for operator {m}"),
            AutodiffError::Ir(e) => write!(f, "gradient construction failed: {e}"),
        }
    }
}

impl std::error::Error for AutodiffError {}

impl From<IrError> for AutodiffError {
    fn from(e: IrError) -> Self {
        AutodiffError::Ir(e)
    }
}

/// Differentiates `graph` with respect to every (float) graph input,
/// seeding at the scalar `loss` tensor.
///
/// Returns the forward graph extended with gradient nodes; each input's
/// gradient is marked as a graph output (so distributed training checks see
/// them in `O(G)`).
///
/// # Errors
///
/// - [`AutodiffError::NotScalarLoss`] when `loss` has rank > 0;
/// - [`AutodiffError::Unsupported`] when an operator on a gradient path has
///   no VJP rule (norm/attention/collective gradients are out of the v1
///   subset — see the crate docs).
pub fn backward(graph: &Graph, loss: TensorId) -> Result<GradGraph, AutodiffError> {
    let loss_tensor = graph.tensor(loss);
    if loss_tensor.shape.rank() != 0 {
        return Err(AutodiffError::NotScalarLoss(format!(
            "{} has shape {}",
            loss_tensor.name, loss_tensor.shape
        )));
    }
    let mut b = Builder {
        g: graph.clone(),
        fresh: 0,
    };
    let mut adjoint: HashMap<TensorId, TensorId> = HashMap::new();
    let seed = b.ap("grad_seed", Op::OnesLike, &[loss])?;
    adjoint.insert(loss, seed);

    // Reverse topological order: every node's output adjoint is complete
    // before the node is processed.
    let nodes: Vec<Node> = graph.nodes().to_vec();
    for node in nodes.iter().rev() {
        let Some(&upstream) = adjoint.get(&node.output) else {
            continue; // does not influence the loss
        };
        let contributions = vjp(&mut b, node, upstream)?;
        for (input, grad) in contributions {
            accumulate(&mut b, &mut adjoint, input, grad)?;
        }
    }

    let mut grads = HashMap::new();
    for &input in graph.inputs() {
        if let Some(&g) = adjoint.get(&input) {
            b.g.add_output(g);
            grads.insert(input, g);
        }
    }
    b.g.validate()?;
    Ok(GradGraph { graph: b.g, grads })
}

struct Builder {
    g: Graph,
    fresh: usize,
}

impl Builder {
    fn ap(&mut self, name: &str, op: Op, inputs: &[TensorId]) -> Result<TensorId, AutodiffError> {
        self.fresh += 1;
        let unique = format!("d{}#{}", name, self.fresh);
        Ok(self.g.append(&unique, op, inputs)?)
    }

    fn shape(&self, t: TensorId) -> Shape {
        self.g.tensor(t).shape.clone()
    }
}

fn accumulate(
    b: &mut Builder,
    adjoint: &mut HashMap<TensorId, TensorId>,
    tensor: TensorId,
    grad: TensorId,
) -> Result<(), AutodiffError> {
    let merged = match adjoint.get(&tensor) {
        Some(&existing) => b.ap("acc", Op::Add, &[existing, grad])?,
        None => grad,
    };
    adjoint.insert(tensor, merged);
    Ok(())
}

/// Reduces `grad` back to `target`'s shape after broadcasting: sums the
/// extra leading dims, then sums (keepdim) over axes broadcast from size 1.
fn unbroadcast(b: &mut Builder, grad: TensorId, target: &Shape) -> Result<TensorId, AutodiffError> {
    let mut g = grad;
    while b.shape(g).rank() > target.rank() {
        g = b.ap(
            "unb_lead",
            Op::SumDim {
                dim: 0,
                keepdim: false,
            },
            &[g],
        )?;
    }
    let gshape = b.shape(g);
    for d in 0..target.rank() {
        let t1 = target.dim(d).as_const() == Some(1);
        let g1 = gshape.dim(d).as_const() == Some(1);
        if t1 && !g1 {
            g = b.ap(
                "unb_axis",
                Op::SumDim {
                    dim: d,
                    keepdim: true,
                },
                &[g],
            )?;
        }
    }
    Ok(g)
}

/// One operator's VJP: gradients for each of its tensor inputs.
fn vjp(
    b: &mut Builder,
    node: &Node,
    u: TensorId,
) -> Result<Vec<(TensorId, TensorId)>, AutodiffError> {
    let ins = node.inputs.clone();
    let y = node.output;
    let out = match &node.op {
        Op::Add => {
            let ga = unbroadcast_to(b, u, ins[0])?;
            let gb = unbroadcast_to(b, u, ins[1])?;
            vec![(ins[0], ga), (ins[1], gb)]
        }
        Op::Sub => {
            let ga = unbroadcast_to(b, u, ins[0])?;
            let n = b.ap("neg", Op::Neg, &[u])?;
            let gb = unbroadcast_to(b, n, ins[1])?;
            vec![(ins[0], ga), (ins[1], gb)]
        }
        Op::Mul => {
            let ua = b.ap("mul_gb", Op::Mul, &[u, ins[1]])?;
            let ub = b.ap("mul_ga", Op::Mul, &[u, ins[0]])?;
            vec![
                (ins[0], unbroadcast_to(b, ua, ins[0])?),
                (ins[1], unbroadcast_to(b, ub, ins[1])?),
            ]
        }
        Op::Div => {
            let ga = b.ap("div_ga", Op::Div, &[u, ins[1]])?;
            let num = b.ap("div_num", Op::Mul, &[u, ins[0]])?;
            let den = b.ap("div_den", Op::Mul, &[ins[1], ins[1]])?;
            let frac = b.ap("div_frac", Op::Div, &[num, den])?;
            let gb = b.ap("div_gb", Op::Neg, &[frac])?;
            vec![
                (ins[0], unbroadcast_to(b, ga, ins[0])?),
                (ins[1], unbroadcast_to(b, gb, ins[1])?),
            ]
        }
        Op::Neg => vec![(ins[0], b.ap("neg", Op::Neg, &[u])?)],
        Op::Exp => vec![(ins[0], b.ap("exp", Op::Mul, &[u, y])?)],
        Op::Sqrt => {
            let r = b.ap("rsqrt", Op::Rsqrt, &[ins[0]])?;
            let half = b.ap("half", Op::ScalarMul { numer: 1, denom: 2 }, &[r])?;
            vec![(ins[0], b.ap("sqrt", Op::Mul, &[u, half])?)]
        }
        Op::Rsqrt => {
            // d/dx x^(-1/2) = -1/2 · y / x
            let frac = b.ap("rs_frac", Op::Div, &[y, ins[0]])?;
            let scaled = b.ap(
                "rs_scale",
                Op::ScalarMul {
                    numer: -1,
                    denom: 2,
                },
                &[frac],
            )?;
            vec![(ins[0], b.ap("rsqrt", Op::Mul, &[u, scaled])?)]
        }
        Op::Tanh => {
            let ones = b.ap("ones", Op::OnesLike, &[y])?;
            let yy = b.ap("yy", Op::Mul, &[y, y])?;
            let one_m = b.ap("one_m", Op::Sub, &[ones, yy])?;
            vec![(ins[0], b.ap("tanh", Op::Mul, &[u, one_m])?)]
        }
        Op::Sigmoid => {
            let ones = b.ap("ones", Op::OnesLike, &[y])?;
            let one_m = b.ap("one_m", Op::Sub, &[ones, y])?;
            let yd = b.ap("yd", Op::Mul, &[y, one_m])?;
            vec![(ins[0], b.ap("sigmoid", Op::Mul, &[u, yd])?)]
        }
        Op::Relu => {
            let mask = b.ap("mask", Op::Step, &[ins[0]])?;
            vec![(ins[0], b.ap("relu", Op::Mul, &[u, mask])?)]
        }
        Op::Gelu => {
            let d = b.ap("gelu_d", Op::GeluGrad, &[ins[0]])?;
            vec![(ins[0], b.ap("gelu", Op::Mul, &[u, d])?)]
        }
        Op::Silu => {
            let d = b.ap("silu_d", Op::SiluGrad, &[ins[0]])?;
            vec![(ins[0], b.ap("silu", Op::Mul, &[u, d])?)]
        }
        Op::Cos => {
            let s = b.ap("sin", Op::Sin, &[ins[0]])?;
            let us = b.ap("us", Op::Mul, &[u, s])?;
            vec![(ins[0], b.ap("cos", Op::Neg, &[us])?)]
        }
        Op::Sin => {
            let c = b.ap("cos", Op::Cos, &[ins[0]])?;
            vec![(ins[0], b.ap("sin", Op::Mul, &[u, c])?)]
        }
        Op::ScalarMul { numer, denom } => {
            let g = b.ap(
                "smul",
                Op::ScalarMul {
                    numer: *numer,
                    denom: *denom,
                },
                &[u],
            )?;
            vec![(ins[0], g)]
        }
        Op::Identity => vec![(ins[0], u)],
        Op::Step | Op::OnesLike | Op::GeluGrad | Op::SiluGrad => {
            // Zero (or unsupported-second-order) derivative almost
            // everywhere: no gradient flows back.
            vec![]
        }
        Op::SumDim { dim, keepdim } => {
            let expanded = if *keepdim {
                u
            } else {
                let mut dims: Vec<Dim> = b.shape(u).dims().to_vec();
                dims.insert(*dim, Dim::from(1i64));
                b.ap("sd_keep", Op::Reshape { shape: dims }, &[u])?
            };
            let ones = b.ap("ones", Op::OnesLike, &[ins[0]])?;
            vec![(ins[0], b.ap("sum_dim", Op::Mul, &[ones, expanded])?)]
        }
        Op::MeanDim { dim, keepdim } => {
            let n = b
                .shape(ins[0])
                .dim(*dim)
                .as_const()
                .ok_or_else(|| AutodiffError::Unsupported("mean over symbolic dim".into()))?;
            let expanded = if *keepdim {
                u
            } else {
                let mut dims: Vec<Dim> = b.shape(u).dims().to_vec();
                dims.insert(*dim, Dim::from(1i64));
                b.ap("md_keep", Op::Reshape { shape: dims }, &[u])?
            };
            let ones = b.ap("ones", Op::OnesLike, &[ins[0]])?;
            let spread = b.ap("md_spread", Op::Mul, &[ones, expanded])?;
            vec![(
                ins[0],
                b.ap("mean_dim", Op::ScalarMul { numer: 1, denom: n }, &[spread])?,
            )]
        }
        Op::SumAll => {
            let ones = b.ap("ones", Op::OnesLike, &[ins[0]])?;
            vec![(ins[0], b.ap("sum_all", Op::Mul, &[ones, u])?)]
        }
        Op::MeanAll => {
            let n = b
                .shape(ins[0])
                .numel()
                .ok_or_else(|| AutodiffError::Unsupported("mean over symbolic shape".into()))?;
            let ones = b.ap("ones", Op::OnesLike, &[ins[0]])?;
            let spread = b.ap("ma_spread", Op::Mul, &[ones, u])?;
            vec![(
                ins[0],
                b.ap("mean_all", Op::ScalarMul { numer: 1, denom: n }, &[spread])?,
            )]
        }
        Op::Softmax { dim } => {
            // gx = y ⊙ (u − Σ_d (u ⊙ y))
            let uy = b.ap("sm_uy", Op::Mul, &[u, y])?;
            let s = b.ap(
                "sm_sum",
                Op::SumDim {
                    dim: *dim,
                    keepdim: true,
                },
                &[uy],
            )?;
            let centered = b.ap("sm_center", Op::Sub, &[u, s])?;
            vec![(ins[0], b.ap("softmax", Op::Mul, &[y, centered])?)]
        }
        Op::Matmul => {
            let (a, bb) = (ins[0], ins[1]);
            let (ra, rb) = (b.shape(a).rank(), b.shape(bb).rank());
            let bt = b.ap(
                "mm_bt",
                Op::Transpose {
                    d0: rb - 2,
                    d1: rb - 1,
                },
                &[bb],
            )?;
            let ga = b.ap("mm_ga", Op::Matmul, &[u, bt])?;
            let at = b.ap(
                "mm_at",
                Op::Transpose {
                    d0: ra - 2,
                    d1: ra - 1,
                },
                &[a],
            )?;
            let gb = b.ap("mm_gb", Op::Matmul, &[at, u])?;
            vec![
                (a, unbroadcast_to(b, ga, a)?),
                (bb, unbroadcast_to(b, gb, bb)?),
            ]
        }
        Op::MseLoss => {
            let n = b
                .shape(ins[0])
                .numel()
                .ok_or_else(|| AutodiffError::Unsupported("mse over symbolic shape".into()))?;
            let diff = b.ap("mse_diff", Op::Sub, &[ins[0], ins[1]])?;
            let scaled = b.ap("mse_scale", Op::ScalarMul { numer: 2, denom: n }, &[diff])?;
            let gp = b.ap("mse_gp", Op::Mul, &[scaled, u])?;
            let gt = b.ap("mse_gt", Op::Neg, &[gp])?;
            vec![(ins[0], gp), (ins[1], gt)]
        }
        Op::Slice { dim, start, end } => {
            let size = b.shape(ins[0]).dim(*dim).0.clone();
            let after = Dim(size - end.0.clone());
            let g = b.ap(
                "slice",
                Op::Pad {
                    dim: *dim,
                    before: start.clone(),
                    after,
                },
                &[u],
            )?;
            vec![(ins[0], g)]
        }
        Op::Pad {
            dim,
            before,
            after: _,
        } => {
            let size = b.shape(ins[0]).dim(*dim).0.clone();
            let lo = before.clone();
            let hi = Dim(before.0.clone() + size);
            let g = b.ap(
                "pad",
                Op::Slice {
                    dim: *dim,
                    start: lo,
                    end: hi,
                },
                &[u],
            )?;
            vec![(ins[0], g)]
        }
        Op::Concat { dim } | Op::AllGather { dim } => {
            let mut out = Vec::with_capacity(ins.len());
            let mut offset = entangle_symbolic_zero();
            for &input in &ins {
                let len = b.shape(input).dim(*dim).0.clone();
                let lo = Dim(offset.clone());
                let hi = Dim(offset.clone() + len.clone());
                let g = b.ap(
                    "concat",
                    Op::Slice {
                        dim: *dim,
                        start: lo,
                        end: hi,
                    },
                    &[u],
                )?;
                out.push((input, g));
                offset = offset + len;
            }
            out
        }
        Op::Transpose { d0, d1 } => {
            vec![(
                ins[0],
                b.ap("transp", Op::Transpose { d0: *d0, d1: *d1 }, &[u])?,
            )]
        }
        Op::Permute { perm } => {
            let mut inverse = vec![0usize; perm.len()];
            for (i, &p) in perm.iter().enumerate() {
                inverse[p] = i;
            }
            vec![(ins[0], b.ap("perm", Op::Permute { perm: inverse }, &[u])?)]
        }
        Op::Reshape { .. } => {
            let dims = b.shape(ins[0]).dims().to_vec();
            vec![(ins[0], b.ap("reshape", Op::Reshape { shape: dims }, &[u])?)]
        }
        Op::Maximum => {
            // Subgradient: the larger operand gets the flow (ties drop it —
            // a measure-zero event under continuous inputs).
            let d_ab = b.ap("max_dab", Op::Sub, &[ins[0], ins[1]])?;
            let mask_a = b.ap("max_ma", Op::Step, &[d_ab])?;
            let d_ba = b.ap("max_dba", Op::Sub, &[ins[1], ins[0]])?;
            let mask_b = b.ap("max_mb", Op::Step, &[d_ba])?;
            let ga = b.ap("max_ga", Op::Mul, &[u, mask_a])?;
            let gb = b.ap("max_gb", Op::Mul, &[u, mask_b])?;
            vec![
                (ins[0], unbroadcast_to(b, ga, ins[0])?),
                (ins[1], unbroadcast_to(b, gb, ins[1])?),
            ]
        }
        Op::Rope => {
            // Rope is a rotation; its transpose is the inverse rotation —
            // the same rope with the sine table negated. The (constant)
            // tables get no gradient.
            let (x, cos, sin) = (ins[0], ins[1], ins[2]);
            let nsin = b.ap("rope_nsin", Op::Neg, &[sin])?;
            let dx = b.ap("rope_dx", Op::Rope, &[u, cos, nsin])?;
            let _ = x;
            vec![(ins[0], dx)]
        }
        Op::RmsNorm => {
            // y = x ⊙ r ⊙ w with r = rsqrt(mean(x², -1) + ε), ε = 1e-5
            // (matching the runtime's NORM_EPS).
            //   dx = w⊙u⊙r − x ⊙ mean(w⊙u⊙x, -1) ⊙ r³
            //   dw = Σ_rows u ⊙ x ⊙ r
            let (x, w) = (ins[0], ins[1]);
            let rank = b.shape(x).rank();
            let last = rank - 1;
            let xx = b.ap("rms_xx", Op::Mul, &[x, x])?;
            let ms = b.ap(
                "rms_ms",
                Op::MeanDim {
                    dim: last,
                    keepdim: true,
                },
                &[xx],
            )?;
            let ones = b.ap("rms_ones", Op::OnesLike, &[ms])?;
            let eps = b.ap(
                "rms_eps",
                Op::ScalarMul {
                    numer: 1,
                    denom: 100_000,
                },
                &[ones],
            )?;
            let ms_eps = b.ap("rms_mse", Op::Add, &[ms, eps])?;
            let r = b.ap("rms_r", Op::Rsqrt, &[ms_eps])?;
            // dw: sum over all leading dims of u ⊙ x ⊙ r.
            let ux = b.ap("rms_ux", Op::Mul, &[u, x])?;
            let uxr = b.ap("rms_uxr", Op::Mul, &[ux, r])?;
            let mut dw = uxr;
            for _ in 0..rank - 1 {
                dw = b.ap(
                    "rms_dw_sum",
                    Op::SumDim {
                        dim: 0,
                        keepdim: false,
                    },
                    &[dw],
                )?;
            }
            // dx.
            let wu = b.ap("rms_wu", Op::Mul, &[u, w])?;
            let term1 = b.ap("rms_t1", Op::Mul, &[wu, r])?;
            let wux = b.ap("rms_wux", Op::Mul, &[wu, x])?;
            let m = b.ap(
                "rms_m",
                Op::MeanDim {
                    dim: last,
                    keepdim: true,
                },
                &[wux],
            )?;
            let r2 = b.ap("rms_r2", Op::Mul, &[r, r])?;
            let r3 = b.ap("rms_r3", Op::Mul, &[r2, r])?;
            let mr3 = b.ap("rms_mr3", Op::Mul, &[m, r3])?;
            let term2 = b.ap("rms_t2", Op::Mul, &[x, mr3])?;
            let dx = b.ap("rms_dx", Op::Sub, &[term1, term2])?;
            vec![(x, dx), (w, dw)]
        }
        Op::LayerNorm => {
            // y = n ⊙ w + b with n = (x − μ)·r, r = rsqrt(var + ε).
            //   dx = r ⊙ (g − mean(g, -1) − n ⊙ mean(g ⊙ n, -1)), g = u⊙w
            //   dw = Σ_rows u ⊙ n;  db = Σ_rows u
            let (x, w, bias) = (ins[0], ins[1], ins[2]);
            let rank = b.shape(x).rank();
            let last = rank - 1;
            let mu = b.ap(
                "ln_mu",
                Op::MeanDim {
                    dim: last,
                    keepdim: true,
                },
                &[x],
            )?;
            let centered = b.ap("ln_center", Op::Sub, &[x, mu])?;
            let sq = b.ap("ln_sq", Op::Mul, &[centered, centered])?;
            let var = b.ap(
                "ln_var",
                Op::MeanDim {
                    dim: last,
                    keepdim: true,
                },
                &[sq],
            )?;
            let ones = b.ap("ln_ones", Op::OnesLike, &[var])?;
            let eps = b.ap(
                "ln_eps",
                Op::ScalarMul {
                    numer: 1,
                    denom: 100_000,
                },
                &[ones],
            )?;
            let var_eps = b.ap("ln_vareps", Op::Add, &[var, eps])?;
            let r = b.ap("ln_r", Op::Rsqrt, &[var_eps])?;
            let n = b.ap("ln_n", Op::Mul, &[centered, r])?;
            // dw, db.
            let un = b.ap("ln_un", Op::Mul, &[u, n])?;
            let mut dw = un;
            let mut db = u;
            for _ in 0..rank - 1 {
                dw = b.ap(
                    "ln_dw_sum",
                    Op::SumDim {
                        dim: 0,
                        keepdim: false,
                    },
                    &[dw],
                )?;
                db = b.ap(
                    "ln_db_sum",
                    Op::SumDim {
                        dim: 0,
                        keepdim: false,
                    },
                    &[db],
                )?;
            }
            // dx.
            let g = b.ap("ln_g", Op::Mul, &[u, w])?;
            let mg = b.ap(
                "ln_mg",
                Op::MeanDim {
                    dim: last,
                    keepdim: true,
                },
                &[g],
            )?;
            let gn = b.ap("ln_gn", Op::Mul, &[g, n])?;
            let mgn = b.ap(
                "ln_mgn",
                Op::MeanDim {
                    dim: last,
                    keepdim: true,
                },
                &[gn],
            )?;
            let nm = b.ap("ln_nm", Op::Mul, &[n, mgn])?;
            let inner = b.ap("ln_inner", Op::Sub, &[g, mg])?;
            let inner2 = b.ap("ln_inner2", Op::Sub, &[inner, nm])?;
            let dx = b.ap("ln_dx", Op::Mul, &[r, inner2])?;
            vec![(x, dx), (w, dw), (bias, db)]
        }
        Op::Embedding => {
            let vocab = b
                .shape(ins[0])
                .dim(0)
                .as_const()
                .ok_or_else(|| AutodiffError::Unsupported("symbolic vocab".into()))?
                as usize;
            let gw = b.ap("emb", Op::EmbeddingGrad { vocab }, &[ins[1], u])?;
            vec![(ins[0], gw)] // no gradient for the integer ids
        }
        Op::AllReduce => {
            // d(Σᵢ xᵢ)/dxᵢ = 1: the upstream grad flows to every input.
            ins.iter().map(|&i| (i, u)).collect()
        }
        unsupported => {
            return Err(AutodiffError::Unsupported(format!(
                "{} (node {})",
                unsupported.name(),
                node.name
            )));
        }
    };
    Ok(out)
}

fn unbroadcast_to(
    b: &mut Builder,
    grad: TensorId,
    target: TensorId,
) -> Result<TensorId, AutodiffError> {
    let shape = b.shape(target);
    unbroadcast(b, grad, &shape)
}

fn entangle_symbolic_zero() -> entangle_symbolic::SymExpr {
    entangle_symbolic::SymExpr::zero()
}
