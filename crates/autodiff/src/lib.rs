//! Reverse-mode differentiation over the computation-graph IR.
//!
//! The paper checks backward passes too ("the approach and our
//! implementation can check both passes", §6.1) but could only capture one
//! model's backward graph through TorchDynamo. This crate removes that
//! bottleneck for the reproduction: [`backward`] takes any forward graph
//! built from the supported operator subset and emits an extended graph
//! containing explicit gradient computation for every graph input — the
//! `G_s` (and, after distribution, `G_d`) that training-time refinement
//! checks consume.
//!
//! Gradients are expressed entirely in the existing operator vocabulary
//! (plus [`entangle_ir::Op::OnesLike`], [`entangle_ir::Op::Step`] and
//! [`entangle_ir::Op::EmbeddingGrad`]), so the checker's lemma corpus
//! applies to backward graphs unchanged. Every VJP rule is validated against
//! central finite differences in this crate's tests.
//!
//! # Examples
//!
//! ```
//! use entangle_autodiff::backward;
//! use entangle_ir::{DType, GraphBuilder, Op};
//!
//! let mut g = GraphBuilder::new("f");
//! let x = g.input("x", &[3, 2], DType::F32);
//! let w = g.input("w", &[2, 1], DType::F32);
//! let y = g.input("y", &[3, 1], DType::F32);
//! let p = g.apply("p", Op::Matmul, &[x, w]).unwrap();
//! let loss = g.apply("loss", Op::MseLoss, &[p, y]).unwrap();
//! g.mark_output(loss);
//! let graph = g.finish().unwrap();
//!
//! let grads = backward(&graph, loss).unwrap();
//! let gw = grads.grad_of(w).expect("w gets a gradient");
//! assert_eq!(grads.graph.tensor(gw).shape.to_string(), "[2, 1]");
//! ```

#![forbid(unsafe_code)]

mod rules;

pub use rules::{backward, AutodiffError, GradGraph};

#[cfg(test)]
mod tests;
