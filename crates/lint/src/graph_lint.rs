//! Passes 1 and 2: graph well-formedness and distribution consistency.
//!
//! Both passes are *defensive*: they accept arbitrary [`Graph`] values —
//! including malformed ones assembled by
//! [`Graph::from_parts_unchecked`](entangle_ir::Graph::from_parts_unchecked)
//! or loaded with `Graph::from_json_unvalidated` — and never panic or index
//! out of range. This is what lets `entangle lint` report diagnostics on
//! graphs that `Graph::validate` would reject with only its first error.

use std::collections::{BTreeMap, HashMap, HashSet};

use entangle_ir::{infer_output, Graph, Op, Tensor, TensorId};

use crate::{codes, Anchor, Diagnostic, LintReport};

/// Runs the graph lint: pass 1 (well-formedness) always, pass 2
/// (distribution consistency) only when pass 1 found no errors — the
/// distribution checks assume resolvable tensor references.
pub fn lint_graph(graph: &Graph) -> LintReport {
    let mut report = LintReport::default();
    well_formedness(graph, &mut report);
    if report.is_clean() {
        distribution(graph, &mut report);
    }
    report
}

/// Resolves a tensor reference without panicking.
fn tensor_ref(graph: &Graph, id: TensorId) -> Option<&Tensor> {
    graph.tensors().get(id.0 as usize)
}

/// Pass 1: structural integrity, SSA, topology, and a full re-run of shape
/// inference cross-checking the stored metadata.
fn well_formedness(graph: &Graph, report: &mut LintReport) {
    let diags = &mut report.diagnostics;

    // Tensor table: positional ids and unique names.
    let mut names: HashMap<&str, TensorId> = HashMap::new();
    for (i, t) in graph.tensors().iter().enumerate() {
        if t.id.0 as usize != i {
            diags.push(Diagnostic::error(
                codes::MISINDEXED_ID,
                Anchor::Tensor(TensorId(i as u32)),
                format!("tensor at position {i} carries id {}", t.id),
            ));
        }
        if let Some(first) = names.insert(&t.name, t.id) {
            diags.push(
                Diagnostic::error(
                    codes::DUPLICATE_NAME,
                    Anchor::Tensor(t.id),
                    format!("tensor name {:?} already used by {first}", t.name),
                )
                .with_suggestion("rename one of the tensors; names must be unique per graph"),
            );
        }
    }

    // Graph inputs must resolve; they seed the produced set.
    let mut produced: HashSet<TensorId> = HashSet::new();
    for &i in graph.inputs() {
        if tensor_ref(graph, i).is_none() {
            diags.push(Diagnostic::error(
                codes::DANGLING_REF,
                Anchor::Graph,
                format!("graph input {i} does not exist"),
            ));
        } else {
            produced.insert(i);
        }
    }

    // Node table: positional ids, resolvable references, topological
    // consumption (which also rules out cycles in this indexed
    // representation), single static assignment, and inference cross-check.
    for (i, node) in graph.nodes().iter().enumerate() {
        let anchor = Anchor::Node(node.id);
        if node.id.0 as usize != i {
            diags.push(Diagnostic::error(
                codes::MISINDEXED_ID,
                anchor.clone(),
                format!("node at position {i} carries id {}", node.id),
            ));
        }
        let mut metas = Vec::with_capacity(node.inputs.len());
        let mut resolvable = true;
        for &input in &node.inputs {
            match tensor_ref(graph, input) {
                None => {
                    diags.push(Diagnostic::error(
                        codes::DANGLING_REF,
                        anchor.clone(),
                        format!("node {:?} consumes nonexistent tensor {input}", node.name),
                    ));
                    resolvable = false;
                }
                Some(t) => {
                    if !produced.contains(&input) {
                        diags.push(
                            Diagnostic::error(
                                codes::NOT_TOPOLOGICAL,
                                anchor.clone(),
                                format!(
                                    "node {:?} consumes {:?} before it is produced \
                                     (cycle or non-topological order)",
                                    node.name, t.name
                                ),
                            )
                            .with_suggestion("reorder the node table topologically"),
                        );
                    }
                    metas.push((t.shape.clone(), t.dtype));
                }
            }
        }
        if let Some(arity) = node.op.arity() {
            if node.inputs.len() != arity {
                diags.push(Diagnostic::error(
                    codes::BAD_APPLICATION,
                    anchor.clone(),
                    format!(
                        "{} expects {arity} input(s), got {}",
                        node.op.name(),
                        node.inputs.len()
                    ),
                ));
                resolvable = false;
            }
        }
        let Some(out) = tensor_ref(graph, node.output) else {
            diags.push(Diagnostic::error(
                codes::DANGLING_REF,
                anchor.clone(),
                format!(
                    "node {:?} claims nonexistent output tensor {}",
                    node.name, node.output
                ),
            ));
            continue;
        };
        if resolvable {
            match infer_output(&node.op, &metas) {
                Err(e) => diags.push(Diagnostic::error(
                    codes::BAD_APPLICATION,
                    anchor.clone(),
                    format!("shape inference rejects {:?}: {e}", node.name),
                )),
                Ok((shape, dtype)) => {
                    if out.shape != shape || out.dtype != dtype {
                        diags.push(
                            Diagnostic::error(
                                codes::SHAPE_MISMATCH,
                                anchor.clone(),
                                format!(
                                    "node {:?} records output {} {} but inference gives {} {}",
                                    node.name, out.shape, out.dtype, shape, dtype
                                ),
                            )
                            .with_suggestion(
                                "the stored tensor metadata is stale; rebuild the graph",
                            ),
                        );
                    }
                }
            }
        }
        if out.producer != Some(node.id) {
            diags.push(Diagnostic::error(
                codes::PRODUCER_CONFLICT,
                anchor.clone(),
                format!(
                    "tensor {:?} is produced by node {:?} but its producer link says {:?}",
                    out.name, node.name, out.producer
                ),
            ));
        }
        if !produced.insert(node.output) {
            diags.push(Diagnostic::error(
                codes::PRODUCER_CONFLICT,
                anchor,
                format!(
                    "tensor {:?} is produced more than once (violates SSA)",
                    out.name
                ),
            ));
        }
    }

    // Graph outputs must resolve and be produced.
    for &o in graph.outputs() {
        match tensor_ref(graph, o) {
            None => diags.push(Diagnostic::error(
                codes::DANGLING_REF,
                Anchor::Graph,
                format!("graph output {o} does not exist"),
            )),
            Some(t) => {
                if !produced.contains(&o) {
                    diags.push(Diagnostic::error(
                        codes::UNPRODUCED_OUTPUT,
                        Anchor::Tensor(o),
                        format!("output {:?} is never produced", t.name),
                    ));
                }
            }
        }
    }
    if graph.outputs().is_empty() {
        diags.push(Diagnostic::warning(
            codes::NO_OUTPUTS,
            Anchor::Graph,
            "graph declares no outputs; refinement checking has nothing to relate",
        ));
    }

    // Liveness warnings: dead nodes and unused inputs.
    let consumed: HashSet<TensorId> = graph
        .nodes()
        .iter()
        .flat_map(|n| n.inputs.iter().copied())
        .collect();
    let out_set: HashSet<TensorId> = graph.outputs().iter().copied().collect();
    for node in graph.nodes() {
        if !consumed.contains(&node.output) && !out_set.contains(&node.output) {
            diags.push(
                Diagnostic::warning(
                    codes::DEAD_NODE,
                    Anchor::Node(node.id),
                    format!(
                        "node {:?} computes {:?} which is never used",
                        node.name,
                        tensor_ref(graph, node.output).map_or("<?>", |t| t.name.as_str())
                    ),
                )
                .with_suggestion("remove the node, or mark its output as a graph output"),
            );
        }
    }
    for &i in graph.inputs() {
        if !consumed.contains(&i) && !out_set.contains(&i) {
            if let Some(t) = tensor_ref(graph, i) {
                diags.push(Diagnostic::warning(
                    codes::UNUSED_INPUT,
                    Anchor::Tensor(i),
                    format!("input {:?} is never consumed", t.name),
                ));
            }
        }
    }
}

/// Pass 2: distribution consistency. Only meaningful on graphs that passed
/// pass 1 (all tensor references resolve).
fn distribution(graph: &Graph, report: &mut LintReport) {
    slice_tiling(graph, report);
    collective_groups(graph, report);
}

/// Slice-based sharding must tile the logical tensor exactly.
///
/// Whenever one tensor has two or more distinct const-bound [`Op::Slice`]
/// consumers along the same dimension that together span it — the first
/// shard starts at 0 and the last ends at the dimension's extent, the
/// signature of a sharded `G_d` — the slices, sorted by start, must cover
/// `[0, size)` with no gap and no overlap. The diagnostic anchors at the
/// first node whose interval breaks the tiling. Groups that do *not* reach
/// both endpoints are projections (e.g. unpadding a gathered tensor) and
/// make no tiling claim; likewise, repeated reads of the same interval are
/// deduplicated rather than flagged as overlap.
fn slice_tiling(graph: &Graph, report: &mut LintReport) {
    /// Const-bound slices of one (source tensor, dim): `(start, end, node)`.
    type ShardGroups<'g> = BTreeMap<(TensorId, usize), Vec<(i64, i64, &'g entangle_ir::Node)>>;
    let mut groups: ShardGroups<'_> = ShardGroups::new();
    for node in graph.nodes() {
        if let Op::Slice { dim, start, end } = &node.op {
            let (Some(s), Some(e)) = (start.as_const(), end.as_const()) else {
                continue;
            };
            let Some(&src) = node.inputs.first() else {
                continue;
            };
            groups.entry((src, *dim)).or_default().push((s, e, node));
        }
    }
    for ((src, dim), mut slices) in groups {
        let tensor = graph.tensor(src);
        let Some(size) = tensor.shape.dims().get(dim).and_then(|d| d.as_const()) else {
            continue; // symbolic extent: tiling is the saturation engine's job
        };
        slices.sort_by_key(|&(s, e, _)| (s, e));
        // Full-range slices are identity reads, and repeated intervals are
        // just repeated reads — neither contributes a shard.
        slices.retain(|&(s, e, _)| !(s == 0 && e == size));
        slices.dedup_by_key(|&mut (s, e, _)| (s, e));
        if slices.len() < 2 {
            continue; // a lone slice is projection, not sharding
        }
        let spans_dim = slices.first().is_some_and(|&(s, _, _)| s == 0)
            && slices.iter().map(|&(_, e, _)| e).max() == Some(size);
        if !spans_dim {
            continue; // projection (e.g. unpad), not a sharding claim
        }
        let mut covered = 0i64;
        for &(s, e, node) in &slices {
            if s > covered {
                report.diagnostics.push(
                    Diagnostic::error(
                        codes::SHARDING_TILE,
                        Anchor::Node(node.id),
                        format!(
                            "shards of {:?} along dim {dim} leave a gap: \
                             [{covered}, {s}) is not covered before slice {:?} [{s}, {e})",
                            tensor.name, node.name
                        ),
                    )
                    .with_suggestion(format!(
                        "adjust the slice bounds so the shards tile [0, {size}) exactly"
                    )),
                );
            } else if s < covered {
                report.diagnostics.push(
                    Diagnostic::error(
                        codes::SHARDING_TILE,
                        Anchor::Node(node.id),
                        format!(
                            "shards of {:?} along dim {dim} overlap: slice {:?} [{s}, {e}) \
                             re-reads [{s}, {})",
                            tensor.name,
                            node.name,
                            covered.min(e)
                        ),
                    )
                    .with_suggestion(format!(
                        "adjust the slice bounds so the shards tile [0, {size}) exactly"
                    )),
                );
            }
            covered = covered.max(e);
        }
        if covered < size {
            let last = slices.last().expect("len >= 2").2;
            report.diagnostics.push(
                Diagnostic::error(
                    codes::SHARDING_TILE,
                    Anchor::Node(last.id),
                    format!(
                        "shards of {:?} along dim {dim} leave a gap: \
                         [{covered}, {size}) is never covered",
                        tensor.name
                    ),
                )
                .with_suggestion(format!(
                    "adjust the slice bounds so the shards tile [0, {size}) exactly"
                )),
            );
        }
    }
}

/// Collectives over the same inputs are one logical communicator: every
/// rank's node must agree in op kind and attributes, and reduce-scatter
/// ranks must be distinct and in range.
fn collective_groups(graph: &Graph, report: &mut LintReport) {
    let mut groups: BTreeMap<Vec<TensorId>, Vec<&entangle_ir::Node>> = BTreeMap::new();
    for node in graph.nodes() {
        if node.op.is_collective() {
            groups.entry(node.inputs.clone()).or_default().push(node);
        }
    }
    for nodes in groups.values() {
        let first = nodes[0];
        let mut ranks: HashMap<usize, &entangle_ir::Node> = HashMap::new();
        for node in nodes {
            match (&first.op, &node.op) {
                (Op::AllReduce, Op::AllReduce) => {}
                (Op::AllGather { dim: d0 }, Op::AllGather { dim: d1 }) => {
                    if d0 != d1 {
                        report.diagnostics.push(Diagnostic::error(
                            codes::COLLECTIVE_MISMATCH,
                            Anchor::Node(node.id),
                            format!(
                                "all_gather {:?} uses dim {d1} but {:?} over the same \
                                 inputs uses dim {d0}",
                                node.name, first.name
                            ),
                        ));
                    }
                }
                (
                    Op::ReduceScatter {
                        dim: d0, world: w0, ..
                    },
                    Op::ReduceScatter {
                        dim: d1,
                        rank,
                        world: w1,
                    },
                ) => {
                    if d0 != d1 || w0 != w1 {
                        report.diagnostics.push(Diagnostic::error(
                            codes::COLLECTIVE_MISMATCH,
                            Anchor::Node(node.id),
                            format!(
                                "reduce_scatter {:?} (dim {d1}, world {w1}) disagrees with \
                                 {:?} (dim {d0}, world {w0}) over the same inputs",
                                node.name, first.name
                            ),
                        ));
                    }
                    if rank >= w1 {
                        report.diagnostics.push(Diagnostic::error(
                            codes::COLLECTIVE_MISMATCH,
                            Anchor::Node(node.id),
                            format!(
                                "reduce_scatter {:?} claims rank {rank} in a world of {w1}",
                                node.name
                            ),
                        ));
                    }
                    if let Some(prev) = ranks.insert(*rank, node) {
                        report.diagnostics.push(
                            Diagnostic::error(
                                codes::COLLECTIVE_MISMATCH,
                                Anchor::Node(node.id),
                                format!(
                                    "reduce_scatter {:?} reuses rank {rank} already taken \
                                     by {:?}",
                                    node.name, prev.name
                                ),
                            )
                            .with_suggestion("each rank's shard must use a distinct rank index"),
                        );
                    }
                }
                _ => {
                    report.diagnostics.push(Diagnostic::error(
                        codes::COLLECTIVE_MISMATCH,
                        Anchor::Node(node.id),
                        format!(
                            "node {:?} ({}) and node {:?} ({}) are different collectives \
                             over the same inputs",
                            first.name,
                            first.op.name(),
                            node.name,
                            node.op.name()
                        ),
                    ));
                }
            }
        }
    }
}
