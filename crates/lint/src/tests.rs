use entangle_egraph::Rewrite;
use entangle_ir::{DType, Dim, Graph, GraphBuilder, Node, NodeId, Op, Shape, Tensor, TensorId};
use entangle_lemmas::{registry, Category, Lemma, TensorAnalysis};

use crate::audit::{audit_lemmas, AuditOptions};
use crate::{codes, lint_graph, Anchor, Diagnostic, LintReport, Severity};

fn has_code(report: &crate::LintReport, code: &str) -> bool {
    report.diagnostics.iter().any(|d| d.code == code)
}

fn tensor(id: u32, name: &str, dims: &[i64], producer: Option<u32>) -> Tensor {
    Tensor {
        id: TensorId(id),
        name: name.to_owned(),
        shape: Shape::of(dims),
        dtype: DType::F32,
        producer: producer.map(NodeId),
    }
}

#[test]
fn clean_graph_is_clean() {
    let mut g = GraphBuilder::new("clean");
    let x = g.input("x", &[2, 8], DType::F32);
    let w = g.input("w", &[8, 4], DType::F32);
    let y = g.apply("y", Op::Matmul, &[x, w]).unwrap();
    g.mark_output(y);
    let report = lint_graph(&g.finish().unwrap());
    assert!(report.is_clean(), "{}", report.render(None));
    assert_eq!(report.warning_count(), 0);
    assert_eq!(report.summary(), "0 errors / 0 warnings");
}

#[test]
fn dangling_and_duplicate_references() {
    // Node consumes t7 which does not exist; two tensors share a name.
    let g = Graph::from_parts_unchecked(
        "broken".into(),
        vec![
            tensor(0, "x", &[2, 2], None),
            tensor(1, "x", &[2, 2], Some(0)),
        ],
        vec![Node {
            id: NodeId(0),
            name: "y".into(),
            op: Op::Relu,
            inputs: vec![TensorId(7)],
            output: TensorId(1),
        }],
        vec![TensorId(0)],
        vec![TensorId(1)],
    );
    let report = lint_graph(&g);
    assert!(
        has_code(&report, codes::DANGLING_REF),
        "{}",
        report.render(None)
    );
    assert!(has_code(&report, codes::DUPLICATE_NAME));
}

#[test]
fn cycle_is_reported_as_non_topological() {
    // n0 consumes n1's output and vice versa.
    let g = Graph::from_parts_unchecked(
        "cycle".into(),
        vec![
            tensor(0, "a", &[2, 2], Some(0)),
            tensor(1, "b", &[2, 2], Some(1)),
        ],
        vec![
            Node {
                id: NodeId(0),
                name: "f".into(),
                op: Op::Relu,
                inputs: vec![TensorId(1)],
                output: TensorId(0),
            },
            Node {
                id: NodeId(1),
                name: "g".into(),
                op: Op::Relu,
                inputs: vec![TensorId(0)],
                output: TensorId(1),
            },
        ],
        vec![],
        vec![TensorId(0)],
    );
    let report = lint_graph(&g);
    assert!(
        has_code(&report, codes::NOT_TOPOLOGICAL),
        "{}",
        report.render(None)
    );
}

#[test]
fn stale_shape_metadata_is_cross_checked() {
    // Output tensor recorded as [2, 2] but relu of [2, 4] is [2, 4].
    let g = Graph::from_parts_unchecked(
        "stale".into(),
        vec![
            tensor(0, "x", &[2, 4], None),
            tensor(1, "y", &[2, 2], Some(0)),
        ],
        vec![Node {
            id: NodeId(0),
            name: "y".into(),
            op: Op::Relu,
            inputs: vec![TensorId(0)],
            output: TensorId(1),
        }],
        vec![TensorId(0)],
        vec![TensorId(1)],
    );
    let report = lint_graph(&g);
    assert!(
        has_code(&report, codes::SHAPE_MISMATCH),
        "{}",
        report.render(None)
    );
}

#[test]
fn dead_node_and_unused_input_warn() {
    let mut g = GraphBuilder::new("liveness");
    let x = g.input("x", &[2, 2], DType::F32);
    let unused = g.input("unused", &[3], DType::F32);
    let y = g.apply("y", Op::Relu, &[x]).unwrap();
    let _dead = g.apply("dead", Op::Neg, &[x]).unwrap();
    g.mark_output(y);
    let _ = unused;
    let report = lint_graph(&g.finish().unwrap());
    assert!(report.is_clean());
    assert!(
        has_code(&report, codes::DEAD_NODE),
        "{}",
        report.render(None)
    );
    assert!(has_code(&report, codes::UNUSED_INPUT));
}

/// The ISSUE's acceptance case: a mis-sharded distributed graph whose rank-1
/// shard starts at the wrong offset, leaving a gap (and an overlap when the
/// bounds collide) — lint must flag the offending slice node.
#[test]
fn missharded_slice_gap_is_flagged_with_anchor() {
    let mut g = GraphBuilder::new("gd-missharded");
    let x = g.input("x", &[8, 4], DType::F32);
    let s0 = g
        .apply(
            "shard0",
            Op::Slice {
                dim: 0,
                start: Dim::from(0),
                end: Dim::from(4),
            },
            &[x],
        )
        .unwrap();
    // Wrong: should start at 4; [5, 8) leaves row 4 uncovered.
    let s1 = g
        .apply(
            "shard1",
            Op::Slice {
                dim: 0,
                start: Dim::from(5),
                end: Dim::from(8),
            },
            &[x],
        )
        .unwrap();
    g.mark_output(s0);
    g.mark_output(s1);
    let graph = g.finish().unwrap();
    let report = lint_graph(&graph);
    assert!(!report.is_clean());
    let diag = report
        .errors()
        .find(|d| d.code == codes::SHARDING_TILE)
        .expect("sharding diagnostic");
    // Anchored at the node after the gap: shard1.
    assert_eq!(
        diag.anchor,
        Anchor::Node(graph.tensor_by_name("shard1").unwrap().producer.unwrap())
    );
    assert!(diag.message.contains("gap"), "{}", diag.message);
}

#[test]
fn overlapping_shards_are_flagged() {
    let mut g = GraphBuilder::new("gd-overlap");
    let x = g.input("x", &[8, 4], DType::F32);
    let s0 = g
        .apply(
            "shard0",
            Op::Slice {
                dim: 0,
                start: Dim::from(0),
                end: Dim::from(5),
            },
            &[x],
        )
        .unwrap();
    let s1 = g
        .apply(
            "shard1",
            Op::Slice {
                dim: 0,
                start: Dim::from(4),
                end: Dim::from(8),
            },
            &[x],
        )
        .unwrap();
    g.mark_output(s0);
    g.mark_output(s1);
    let report = lint_graph(&g.finish().unwrap());
    let diag = report
        .errors()
        .find(|d| d.code == codes::SHARDING_TILE)
        .expect("sharding diagnostic");
    assert!(diag.message.contains("overlap"), "{}", diag.message);
}

#[test]
fn exact_tiling_passes_and_lone_slice_is_projection() {
    // Proper 2-way shard: clean.
    let mut g = GraphBuilder::new("gd-ok");
    let x = g.input("x", &[8, 4], DType::F32);
    for (name, lo, hi) in [("shard0", 0, 4), ("shard1", 4, 8)] {
        let s = g
            .apply(
                name,
                Op::Slice {
                    dim: 0,
                    start: Dim::from(lo),
                    end: Dim::from(hi),
                },
                &[x],
            )
            .unwrap();
        g.mark_output(s);
    }
    assert!(lint_graph(&g.finish().unwrap()).is_clean());

    // A single partial slice is not sharding; no diagnostic.
    let mut g = GraphBuilder::new("projection");
    let x = g.input("x", &[8, 4], DType::F32);
    let s = g
        .apply(
            "head",
            Op::Slice {
                dim: 0,
                start: Dim::from(0),
                end: Dim::from(2),
            },
            &[x],
        )
        .unwrap();
    g.mark_output(s);
    assert!(lint_graph(&g.finish().unwrap()).is_clean());
}

/// Unpad-style projections slice *interior* windows out of a padded tensor
/// ([0, 3) and [4, 7) of 8 rows, dropping the pad rows). They never claim to
/// tile the dimension — the group stops short of the extent — so E009 must
/// stay silent. Regression test for a false alarm on Table 3's fixed bug 3.
#[test]
fn unpad_projection_is_not_missharding() {
    let mut g = GraphBuilder::new("gd-unpad");
    let x = g.input("gather", &[8, 4], DType::F32);
    for (name, lo, hi) in [("unpad.0", 0, 3), ("unpad.1", 4, 7)] {
        let s = g
            .apply(
                name,
                Op::Slice {
                    dim: 0,
                    start: Dim::from(lo),
                    end: Dim::from(hi),
                },
                &[x],
            )
            .unwrap();
        g.mark_output(s);
    }
    assert!(lint_graph(&g.finish().unwrap()).is_clean());
}

#[test]
fn reduce_scatter_rank_reuse_is_flagged() {
    let mut g = GraphBuilder::new("gd-rs");
    let a = g.input("a", &[8, 4], DType::F32);
    let b = g.input("b", &[8, 4], DType::F32);
    let r0 = g
        .apply(
            "rs0",
            Op::ReduceScatter {
                dim: 0,
                rank: 0,
                world: 2,
            },
            &[a, b],
        )
        .unwrap();
    // Both shards claim rank 0.
    let r1 = g
        .apply(
            "rs1",
            Op::ReduceScatter {
                dim: 0,
                rank: 0,
                world: 2,
            },
            &[a, b],
        )
        .unwrap();
    g.mark_output(r0);
    g.mark_output(r1);
    let report = lint_graph(&g.finish().unwrap());
    let diag = report
        .errors()
        .find(|d| d.code == codes::COLLECTIVE_MISMATCH)
        .expect("collective diagnostic");
    assert!(diag.message.contains("rank 0"), "{}", diag.message);
}

#[test]
fn mismatched_collectives_over_same_inputs_are_flagged() {
    let mut g = GraphBuilder::new("gd-mixed");
    let a = g.input("a", &[8, 4], DType::F32);
    let b = g.input("b", &[8, 4], DType::F32);
    let r0 = g.apply("ag0", Op::AllGather { dim: 0 }, &[a, b]).unwrap();
    let r1 = g.apply("ag1", Op::AllGather { dim: 1 }, &[a, b]).unwrap();
    g.mark_output(r0);
    g.mark_output(r1);
    let report = lint_graph(&g.finish().unwrap());
    assert!(
        has_code(&report, codes::COLLECTIVE_MISMATCH),
        "{}",
        report.render(None)
    );
}

#[test]
fn render_resolves_anchors() {
    let mut g = GraphBuilder::new("named");
    let x = g.input("x", &[2, 2], DType::F32);
    let _dead = g.apply("deadbeef", Op::Neg, &[x]).unwrap();
    let graph = g.finish().unwrap();
    let report = lint_graph(&graph);
    let rendered = report.render(Some(&graph));
    assert!(rendered.contains("deadbeef"), "{rendered}");
    assert!(rendered.contains("W001"), "{rendered}");
}

// ---- lemma audit ----

fn quick_audit() -> AuditOptions {
    AuditOptions {
        max_matches_per_lemma: 4,
        ..AuditOptions::default()
    }
}

#[test]
fn full_registry_is_sound() {
    let report = audit_lemmas(&registry(), &quick_audit());
    assert!(report.is_clean(), "{}", report.render());
    // The seed corpus must exercise a solid majority of the registry and
    // produce real numeric comparisons, or the audit is vacuous.
    let covered = report.entries.iter().filter(|e| e.matches > 0).count();
    assert!(
        covered * 2 > report.entries.len(),
        "only {covered}/{} lemmas covered",
        report.entries.len()
    );
    assert!(
        report.numeric_checked() > 20,
        "only {} numeric checks",
        report.numeric_checked()
    );
}

fn fake_lemma(rewrite: Rewrite<TensorAnalysis>) -> Lemma {
    Lemma {
        id: 0,
        name: rewrite.name().to_owned(),
        category: Category::General,
        loc: 1,
        complexity: 1,
        models: vec![],
        rewrite,
    }
}

#[test]
fn audit_catches_shape_unsound_lemma() {
    // "concat of two parts equals the first part" — drops half the tensor.
    let broken =
        fake_lemma(Rewrite::parse("broken-concat-drop", "(concat ?a ?b 0)", "?a").unwrap());
    let report = audit_lemmas(&[broken], &quick_audit());
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.code == codes::LEMMA_SHAPE_UNSOUND),
        "{}",
        report.render()
    );
}

#[test]
fn audit_catches_numerically_unsound_lemma() {
    // Matmul is not commutative; on square seeds the shapes agree but the
    // values do not — only the numeric validation can catch this.
    let broken = fake_lemma(
        Rewrite::parse("broken-matmul-comm", "(matmul ?a ?b)", "(matmul ?b ?a)").unwrap(),
    );
    let report = audit_lemmas(&[broken], &quick_audit());
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.code == codes::LEMMA_NUMERIC_UNSOUND),
        "{}",
        report.render()
    );
}

#[test]
fn audit_reports_uncovered_lemma() {
    let exotic = fake_lemma(
        Rewrite::parse(
            "never-matches",
            "(pad (pad ?x 0 1 1) 0 1 1)",
            "(pad ?x 0 2 2)",
        )
        .unwrap(),
    );
    let report = audit_lemmas(&[exotic], &quick_audit());
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.code == codes::LEMMA_UNCOVERED && d.severity == Severity::Warning),
        "{}",
        report.render()
    );
}

#[test]
fn diagnostics_render_as_stable_json() {
    let d = Diagnostic::error(
        codes::SHAPE_MISMATCH,
        Anchor::Node(NodeId(3)),
        "stored shape [2, \"x\"] disagrees",
    )
    .with_suggestion("re-run inference");
    let json = d.to_json(None);
    assert_eq!(
        json,
        "{\"code\":\"E006\",\"severity\":\"error\",\"anchor\":\"n3\",\
         \"message\":\"stored shape [2, \\\"x\\\"] disagrees\",\
         \"suggestion\":\"re-run inference\"}"
    );

    let report = LintReport {
        diagnostics: vec![d],
    };
    let json = report.to_json(None);
    assert!(json.starts_with("{\"errors\":1,\"warnings\":0,\"clean\":false,\"diagnostics\":["));

    // Control characters and quotes survive the hand-rolled escaper.
    assert_eq!(
        crate::json_str("a\"b\\c\nd\te\u{1}"),
        "\"a\\\"b\\\\c\\nd\\te\\u0001\""
    );
}
