//! Static diagnostics for ENTANGLE: a multi-pass analyzer over IR graphs,
//! distributed programs, and the lemma corpus.
//!
//! ENTANGLE localizes distribution bugs only *after* paying for equality
//! saturation, and it trusts both the user-supplied graphs and its own lemma
//! corpus. This crate front-loads the cheap checks, in the style of
//! production graph verifiers:
//!
//! 1. **Graph well-formedness** ([`lint_graph`] pass 1): dangling or
//!    duplicate tensor ids and names, dead nodes, cycles (non-topological
//!    orderings), unused inputs, and a full re-run of shape/dtype inference
//!    over every node to cross-check the stored metadata.
//! 2. **Distribution consistency** ([`lint_graph`] pass 2): collectives over
//!    the same inputs must agree in op, dim, and world, with distinct ranks;
//!    slice-based sharding must tile the logical tensor exactly — no gaps,
//!    no overlaps — with the offending node flagged.
//! 3. **Lemma-corpus soundness audit** ([`audit`]): every rewrite in the
//!    `entangle-lemmas` registry is exercised against ground expressions,
//!    checked for shape-soundness, and numerically validated through
//!    `entangle-runtime` on random tensors.
//!
//! Diagnostics are structured ([`Diagnostic`]): a stable code (`E###` for
//! errors, `W###` for warnings), a severity, an anchor (node, tensor, lemma,
//! or whole graph), a message, and an optional suggestion. The catalogue of
//! codes lives in [`codes`].

#![forbid(unsafe_code)]

pub mod audit;
mod graph_lint;

pub use audit::{audit_lemmas, audit_registry, AuditOptions, AuditReport, LemmaAuditEntry};
pub use graph_lint::lint_graph;

use std::fmt;

use entangle_ir::{Graph, NodeId, TensorId};

/// The diagnostic-code catalogue. Codes are stable: docs, tests and CLI
/// output refer to them by name.
pub mod codes {
    /// Tensor or node id does not match its table position.
    pub const MISINDEXED_ID: &str = "E001";
    /// Duplicate tensor name.
    pub const DUPLICATE_NAME: &str = "E002";
    /// Reference to a tensor or node that does not exist.
    pub const DANGLING_REF: &str = "E003";
    /// A tensor is produced more than once, or its producer link disagrees
    /// with the node table.
    pub const PRODUCER_CONFLICT: &str = "E004";
    /// A node consumes a tensor before it is produced (cycle or
    /// non-topological order).
    pub const NOT_TOPOLOGICAL: &str = "E005";
    /// Stored output shape/dtype disagrees with re-run shape inference.
    pub const SHAPE_MISMATCH: &str = "E006";
    /// Operator applied to the wrong number of inputs, or inference
    /// rejected the inputs outright.
    pub const BAD_APPLICATION: &str = "E007";
    /// Collective nodes over the same inputs disagree (op, dim, world,
    /// duplicate ranks).
    pub const COLLECTIVE_MISMATCH: &str = "E008";
    /// Slice-based sharding leaves a gap or overlap in the logical tensor.
    pub const SHARDING_TILE: &str = "E009";
    /// A graph output is never produced.
    pub const UNPRODUCED_OUTPUT: &str = "E010";
    /// A lemma rewrites a term to one with a different shape or dtype.
    pub const LEMMA_SHAPE_UNSOUND: &str = "E101";
    /// A lemma rewrites a term to one with different numeric values.
    pub const LEMMA_NUMERIC_UNSOUND: &str = "E102";
    /// Dead node: output is neither consumed nor a graph output.
    pub const DEAD_NODE: &str = "W001";
    /// Graph input that no node consumes.
    pub const UNUSED_INPUT: &str = "W002";
    /// Graph declares no outputs.
    pub const NO_OUTPUTS: &str = "W003";
    /// A lemma was never exercised by the audit's seed corpus.
    pub const LEMMA_UNCOVERED: &str = "W101";
}

/// Diagnostic severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// The graph (or corpus) is unsound or unusable; checking must stop.
    Error,
    /// Suspicious but not disqualifying.
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
        }
    }
}

/// What a diagnostic points at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Anchor {
    /// The graph as a whole.
    Graph,
    /// A specific operator node.
    Node(NodeId),
    /// A specific tensor.
    Tensor(TensorId),
    /// A lemma in the registry, by name.
    Lemma(String),
}

/// One structured finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable code from [`codes`] (`E###` or `W###`).
    pub code: &'static str,
    /// Severity.
    pub severity: Severity,
    /// What the finding points at.
    pub anchor: Anchor,
    /// Human-readable description.
    pub message: String,
    /// Optional remediation hint.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// An error diagnostic.
    pub fn error(code: &'static str, anchor: Anchor, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Error,
            anchor,
            message: message.into(),
            suggestion: None,
        }
    }

    /// A warning diagnostic.
    pub fn warning(code: &'static str, anchor: Anchor, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Warning,
            anchor,
            message: message.into(),
            suggestion: None,
        }
    }

    /// Attaches a remediation hint.
    pub fn with_suggestion(mut self, s: impl Into<String>) -> Diagnostic {
        self.suggestion = Some(s.into());
        self
    }

    /// Renders the diagnostic as a JSON object with a stable field order:
    /// `code`, `severity`, `anchor`, `anchor_name` (when resolvable),
    /// `message`, `suggestion` (when present).
    pub fn to_json(&self, graph: Option<&Graph>) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"code\":{}", json_str(self.code)));
        out.push_str(&format!(
            ",\"severity\":{}",
            json_str(&self.severity.to_string())
        ));
        let anchor = match &self.anchor {
            Anchor::Graph => "graph".to_owned(),
            Anchor::Node(id) => id.to_string(),
            Anchor::Tensor(id) => id.to_string(),
            Anchor::Lemma(name) => format!("lemma:{name}"),
        };
        out.push_str(&format!(",\"anchor\":{}", json_str(&anchor)));
        let name = match (&self.anchor, graph) {
            (Anchor::Node(id), Some(g)) if (id.0 as usize) < g.nodes().len() => {
                Some(g.node(*id).name.clone())
            }
            (Anchor::Tensor(id), Some(g)) if (id.0 as usize) < g.tensors().len() => {
                Some(g.tensor(*id).name.clone())
            }
            (Anchor::Graph, Some(g)) => Some(g.name().to_owned()),
            _ => None,
        };
        if let Some(name) = name {
            out.push_str(&format!(",\"anchor_name\":{}", json_str(&name)));
        }
        out.push_str(&format!(",\"message\":{}", json_str(&self.message)));
        if let Some(s) = &self.suggestion {
            out.push_str(&format!(",\"suggestion\":{}", json_str(s)));
        }
        out.push('}');
        out
    }

    /// Renders the diagnostic, resolving anchors to names when a graph is
    /// available.
    pub fn render(&self, graph: Option<&Graph>) -> String {
        let anchor = match (&self.anchor, graph) {
            (Anchor::Graph, Some(g)) => format!("graph {:?}", g.name()),
            (Anchor::Graph, None) => "graph".to_owned(),
            (Anchor::Node(id), Some(g)) if (id.0 as usize) < g.nodes().len() => {
                format!("node {:?} ({id})", g.node(*id).name)
            }
            (Anchor::Node(id), _) => format!("node {id}"),
            (Anchor::Tensor(id), Some(g)) if (id.0 as usize) < g.tensors().len() => {
                format!("tensor {:?} ({id})", g.tensor(*id).name)
            }
            (Anchor::Tensor(id), _) => format!("tensor {id}"),
            (Anchor::Lemma(name), _) => format!("lemma {name:?}"),
        };
        let mut out = format!(
            "{} [{}] {}: {}",
            self.severity, self.code, anchor, self.message
        );
        if let Some(s) = &self.suggestion {
            out.push_str(&format!("\n  help: {s}"));
        }
        out
    }
}

/// The result of a lint run: all diagnostics, in pass order.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// All findings.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// `true` when no errors were found (warnings allowed).
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// Only the error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Renders every diagnostic, one per line, resolving anchors against
    /// `graph` when given.
    pub fn render(&self, graph: Option<&Graph>) -> String {
        self.diagnostics
            .iter()
            .map(|d| d.render(graph))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Renders the whole report as a JSON object with a stable field order:
    /// `errors`, `warnings`, `clean`, `diagnostics`.
    pub fn to_json(&self, graph: Option<&Graph>) -> String {
        let diags: Vec<String> = self.diagnostics.iter().map(|d| d.to_json(graph)).collect();
        format!(
            "{{\"errors\":{},\"warnings\":{},\"clean\":{},\"diagnostics\":[{}]}}",
            self.error_count(),
            self.warning_count(),
            self.is_clean(),
            diags.join(",")
        )
    }

    /// The one-line `N errors / M warnings` summary used by `entangle info`.
    pub fn summary(&self) -> String {
        format!(
            "{} error{} / {} warning{}",
            self.error_count(),
            if self.error_count() == 1 { "" } else { "s" },
            self.warning_count(),
            if self.warning_count() == 1 { "" } else { "s" },
        )
    }
}

/// Escapes `s` as a JSON string literal (quotes included). Hand-rolled so
/// the workspace stays serde-free; delegates to `entangle-trace`, the
/// workspace's single escaping routine, so every interchange format agrees
/// on one encoding.
pub fn json_str(s: &str) -> String {
    entangle_trace::json_str(s)
}

#[cfg(test)]
mod tests;
