//! Pass 3: the lemma-corpus soundness audit.
//!
//! Every rewrite in the registry is exercised against a fixed corpus of
//! *ground* seed expressions (concrete shapes, no pattern variables):
//!
//! 1. each lemma's left-hand side is searched over an e-graph seeded with
//!    the ground corpus;
//! 2. every match is applied **without unioning**
//!    ([`entangle_egraph::Rewrite::apply_match`]), so the produced
//!    right-hand sides stay in distinct e-classes;
//! 3. **shape soundness**: the matched class and every produced class must
//!    agree in inferred shape and dtype;
//! 4. **numeric soundness**: ground terms are extracted from both classes
//!    and evaluated through `entangle-runtime` on random leaf tensors; the
//!    results must agree within tolerance.
//!
//! A lemma that never fires on the corpus is reported as a coverage warning
//! (`W101`), not an error — conditions legitimately reject some seeds.

use std::collections::HashMap;

use entangle_egraph::{AstSize, EGraph, ENode, Extractor, RecExpr};
use entangle_ir::{infer_output, DType, Shape};
use entangle_lemmas::{decode_op, registry, Lemma, Meta, TensorAnalysis, SYNTHETIC_LEAF_PREFIX};
use entangle_runtime::{eval_op, random_ids, random_value, Value};
use entangle_symbolic::SymExpr;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{codes, Anchor, Diagnostic, Severity};

/// Audit configuration.
#[derive(Debug, Clone)]
pub struct AuditOptions {
    /// RNG seed for leaf tensor values.
    pub seed: u64,
    /// Max absolute element difference tolerated between the two sides.
    pub tolerance: f64,
    /// Cap on audited matches per lemma (search can yield many bindings of
    /// the same seed; past this many, further matches add no signal).
    pub max_matches_per_lemma: usize,
}

impl Default for AuditOptions {
    fn default() -> AuditOptions {
        AuditOptions {
            seed: 0xE17A,
            tolerance: 1e-6,
            max_matches_per_lemma: 8,
        }
    }
}

/// Per-lemma audit accounting.
#[derive(Debug, Clone)]
pub struct LemmaAuditEntry {
    /// Lemma name.
    pub name: String,
    /// Matches whose condition accepted and whose applier produced terms.
    pub matches: usize,
    /// Match/production pairs whose shapes could be compared.
    pub shape_checked: usize,
    /// Pairs evaluated numerically end to end.
    pub numeric_checked: usize,
}

/// The audit result: per-lemma accounting plus diagnostics.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// One entry per audited lemma, in registry order.
    pub entries: Vec<LemmaAuditEntry>,
    /// Soundness errors (`E101`/`E102`) and coverage warnings (`W101`).
    pub diagnostics: Vec<Diagnostic>,
}

impl AuditReport {
    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// `true` when no lemma failed a soundness check.
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// Total pairs compared numerically across all lemmas.
    pub fn numeric_checked(&self) -> usize {
        self.entries.iter().map(|e| e.numeric_checked).sum()
    }

    /// Renders every diagnostic, one per line.
    pub fn render(&self) -> String {
        self.diagnostics
            .iter()
            .map(|d| d.render(None))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// How a leaf's random value is drawn.
#[derive(Clone, Copy)]
enum LeafKind {
    /// Uniform floats in (-1, 1).
    Uniform,
    /// Integer ids in `[0, high)` (embedding / cross-entropy indices).
    Ids(i64),
}

/// The ground leaf environment: every name the seed corpus mentions, with
/// shape, dtype and value-sampling kind.
fn leaf_env() -> Vec<(&'static str, Vec<i64>, DType, LeafKind)> {
    use DType::{F32, I64};
    use LeafKind::{Ids, Uniform};
    vec![
        // Block matmul / reduce-scatter seeds (Figure 2).
        ("A1", vec![4, 4], F32, Uniform),
        ("A2", vec![4, 4], F32, Uniform),
        ("B1", vec![4, 4], F32, Uniform),
        ("B2", vec![4, 4], F32, Uniform),
        ("C1", vec![4, 4], F32, Uniform),
        ("C2", vec![4, 4], F32, Uniform),
        // Column/row-parallel linear.
        ("X", vec![2, 8], F32, Uniform),
        ("W1", vec![8, 4], F32, Uniform),
        ("W2", vec![8, 4], F32, Uniform),
        ("XB", vec![2, 3, 8], F32, Uniform),
        ("Wa", vec![8, 4], F32, Uniform),
        ("Wb", vec![8, 4], F32, Uniform),
        // Element-wise over concat.
        ("X1", vec![2, 4], F32, Uniform),
        ("X2", vec![2, 4], F32, Uniform),
        // Norms.
        ("XR1", vec![2, 8], F32, Uniform),
        ("XR2", vec![2, 8], F32, Uniform),
        ("WN", vec![8], F32, Uniform),
        ("LN1", vec![2, 8], F32, Uniform),
        ("LN2", vec![2, 8], F32, Uniform),
        ("LW", vec![8], F32, Uniform),
        ("LB", vec![8], F32, Uniform),
        // Slice / concat algebra.
        ("SA", vec![4, 2], F32, Uniform),
        ("SB", vec![4, 2], F32, Uniform),
        ("XS", vec![8, 2], F32, Uniform),
        ("XSEQ", vec![8, 4], F32, Uniform),
        ("WSEQ", vec![4, 4], F32, Uniform),
        ("PX", vec![6, 2], F32, Uniform),
        // RoPE / attention.
        ("R1", vec![2, 4, 8], F32, Uniform),
        ("R2", vec![2, 4, 8], F32, Uniform),
        ("COS", vec![8, 8], F32, Uniform),
        ("SIN", vec![8, 8], F32, Uniform),
        ("Q1", vec![2, 4, 8], F32, Uniform),
        ("Q2", vec![2, 4, 8], F32, Uniform),
        ("K1", vec![2, 4, 8], F32, Uniform),
        ("K2", vec![2, 4, 8], F32, Uniform),
        ("V1", vec![2, 4, 8], F32, Uniform),
        ("V2", vec![2, 4, 8], F32, Uniform),
        // Embedding / cross-entropy.
        ("EW", vec![100, 8], F32, Uniform),
        ("I1", vec![2, 4], I64, Ids(100)),
        ("I2", vec![2, 4], I64, Ids(100)),
        ("EG1", vec![2, 4, 8], F32, Uniform),
        ("EG2", vec![2, 4, 8], F32, Uniform),
        ("LOG1", vec![2, 10], F32, Uniform),
        ("LOG2", vec![2, 10], F32, Uniform),
        ("IT1", vec![2], I64, Ids(10)),
        ("IT2", vec![2], I64, Ids(10)),
        // Scalars and losses.
        ("AUX", vec![], F32, Uniform),
        ("XV", vec![4], F32, Uniform),
        ("P1", vec![2, 4], F32, Uniform),
        ("P2", vec![2, 4], F32, Uniform),
        ("T1", vec![2, 4], F32, Uniform),
        ("T2", vec![2, 4], F32, Uniform),
        // Binary over concats / broadcast gate.
        ("CA", vec![2, 4], F32, Uniform),
        ("CB", vec![2, 4], F32, Uniform),
        ("CC", vec![2, 4], F32, Uniform),
        ("CD", vec![2, 4], F32, Uniform),
        ("H1", vec![2, 3, 4], F32, Uniform),
        ("H2", vec![2, 3, 4], F32, Uniform),
        ("G", vec![2, 3, 1], F32, Uniform),
        // Transpose / reductions.
        ("TA", vec![2, 6], F32, Uniform),
        ("TB", vec![2, 6], F32, Uniform),
        ("TX", vec![4, 6], F32, Uniform),
        ("MA", vec![3, 2, 5], F32, Uniform),
        ("MB", vec![3, 4, 5], F32, Uniform),
        ("NA", vec![2, 3], F32, Uniform),
        ("NB", vec![6, 3], F32, Uniform),
        ("DA", vec![2, 4], F32, Uniform),
        ("DB", vec![3, 4], F32, Uniform),
        // Aligned bias-add concat.
        ("BX1", vec![2, 8, 4], F32, Uniform),
        ("BX2", vec![2, 8, 4], F32, Uniform),
        ("BB1", vec![4], F32, Uniform),
        ("BB2", vec![4], F32, Uniform),
        // ones_like seeds and scalar linearity.
        ("L1", vec![], F32, Uniform),
        ("MMA", vec![2, 4], F32, Uniform),
        ("MMB", vec![4, 3], F32, Uniform),
        // RoPE tables matching a lone [2, 4, 8] activation.
        ("COS4", vec![4, 8], F32, Uniform),
        ("SIN4", vec![4, 8], F32, Uniform),
    ]
}

/// Ground seed expressions, mirroring the idioms of the distributed models:
/// every lemma family in the registry has at least one seed shaped to match
/// its left- (or right-) hand side.
fn seed_corpus() -> Vec<String> {
    let mut seeds: Vec<String> = base_seeds().iter().map(|s| (*s).to_owned()).collect();
    // Element-wise families: every unary gets concat, slice-inside and
    // slice-outside seeds (the `u-of-concat`, `u-of-slice`, `slice-of-u`
    // lemma triples).
    const UNARY: &[&str] = &[
        "cos",
        "sin",
        "exp",
        "sqrt",
        "rsqrt",
        "gelu",
        "gelu_grad",
        "neg",
        "relu",
        "sigmoid",
        "silu",
        "silu_grad",
        "step",
        "tanh",
        "ones_like",
    ];
    for u in UNARY {
        seeds.push(format!("({u} (concat X1 X2 0))"));
        seeds.push(format!("({u} (slice X1 0 0 1))"));
        seeds.push(format!("(slice ({u} X1) 0 0 1)"));
    }
    // Binary families: aligned concats, matching slices, slice outside.
    const BINARY: &[&str] = &["add", "sub", "mul", "div", "maximum"];
    for b in BINARY {
        seeds.push(format!("({b} (concat CA CB 0) (concat CC CD 0))"));
        seeds.push(format!("({b} (slice CA 0 0 1) (slice CB 0 0 1))"));
        seeds.push(format!("(slice ({b} CA CB) 0 0 1)"));
    }
    seeds
}

fn base_seeds() -> &'static [&'static str] {
    &[
        // Block matmul (Figure 2) and the reduce-scatter cover.
        "(matmul (concat A1 A2 1) (concat B1 B2 0))",
        "(add (matmul A1 B1) (matmul A2 B2))",
        "(add C1 C2)",
        "(concat (slice (add C1 C2) 0 0 2) (slice (add C1 C2) 0 2 4) 0)",
        // Column-parallel linear, batched variant, MLP with activation.
        "(matmul X (concat W1 W2 1))",
        "(concat (matmul X W1) (matmul X W2) 1)",
        "(matmul XB (concat Wa Wb 1))",
        "(gelu (matmul X W1))",
        // Element-wise over concat, both axes.
        "(gelu (concat X1 X2 0))",
        "(silu (concat X1 X2 1))",
        "(relu (concat X1 X2 0))",
        "(tanh (concat X1 X2 0))",
        "(exp (concat X1 X2 0))",
        "(neg (concat X1 X2 0))",
        "(sigmoid (concat X1 X2 0))",
        "(step (concat X1 X2 0))",
        "(gelu_grad (concat X1 X2 0))",
        "(silu_grad (concat X1 X2 0))",
        "(softmax (concat X1 X2 0) 1)",
        // Norms.
        "(rms_norm (concat XR1 XR2 0) WN)",
        "(layer_norm (concat LN1 LN2 0) LW LB)",
        // Slice-of-concat in all relative positions; merges; multiway.
        "(slice (concat SA SB 0) 0 1 3)",
        "(slice (concat SA SB 0) 0 5 7)",
        "(slice (concat SA SB 0) 0 2 6)",
        "(slice (concat SA SB 0) 1 0 1)",
        "(concat (slice XS 0 0 3) (slice XS 0 3 8) 0)",
        "(slice XS 0 0 8)",
        "(concat (concat (concat (slice XS 0 0 2) (slice XS 0 2 4) 0) (slice XS 0 4 6) 0) (slice XS 0 6 8) 0)",
        "(concat (matmul (slice XSEQ 0 0 4) WSEQ) (matmul (slice XSEQ 0 4 8) WSEQ) 0)",
        "(slice (pad PX 0 2 3) 0 2 8)",
        // RoPE and attention head split.
        "(rope (concat R1 R2 1) COS SIN)",
        "(attention (concat Q1 Q2 2) (concat K1 K2 2) (concat V1 V2 2) 4 1)",
        // Embedding family.
        "(embedding EW (concat I1 I2 1))",
        "(embedding_grad (concat I1 I2 1) (concat EG1 EG2 1) 100)",
        "(cross_entropy (concat LOG1 LOG2 0) (concat IT1 IT2 0))",
        // Scalar algebra and losses.
        "(add (scalar_mul AUX 1 2) (scalar_mul AUX 1 2))",
        "(scalar_mul (scalar_mul XV 2 3) 3 2)",
        "(scalar_mul XV 2 8)",
        "(neg XV)",
        "(mse_loss (concat P1 P2 0) (concat T1 T2 0))",
        // Binary over concats; broadcast gate.
        "(add (concat CA CB 0) (concat CC CD 0))",
        "(sub (concat CA CB 0) (concat CC CD 0))",
        "(mul (concat CA CB 0) (concat CC CD 0))",
        "(div (concat CA CB 0) (concat CC CD 0))",
        "(maximum (concat CA CB 0) (concat CC CD 0))",
        "(mul (concat H1 H2 2) G)",
        "(add (concat BX1 BX2 2) (concat BB1 BB2 0))",
        // Transpose and reductions.
        "(transpose (transpose TX 0 1) 0 1)",
        "(transpose (concat TA TB 0) 0 1)",
        "(sum_dim (concat MA MB 1) 0 0)",
        "(sum_dim (concat MA MB 1) 0 1)",
        "(sum_all (concat X1 X2 0))",
        "(mean_all (concat NA NB 0))",
        "(mean_dim (concat DA DB 0) 1 1)",
        "(sum_dim (scalar_mul X1 3 2) 0 0)",
        // ones_like canonicalization and scalar linearity.
        "(ones_like L1)",
        "(ones_like X1)",
        "(mul X1 (ones_like X1))",
        "(mul (ones_like X1) X1)",
        "(matmul MMA (scalar_mul MMB 2 3))",
        "(matmul (scalar_mul MMA 2 3) MMB)",
        "(identity X1)",
        // Associativity.
        "(add (add CA CB) CC)",
        "(add CA (add CB CC))",
        "(concat (concat CA CB 0) CC 0)",
        "(concat CA (concat CB CC 0) 0)",
        // Broadcast gates on either side, and rank-mismatched concats.
        "(add (concat H1 H2 2) G)",
        "(add G (concat H1 H2 2))",
        "(mul G (concat H1 H2 2))",
        "(mul (concat BX1 BX2 2) (concat BB1 BB2 0))",
        // scalar_mul algebra.
        "(scalar_mul (concat X1 X2 0) 1 2)",
        "(scalar_mul (slice X1 0 0 1) 1 2)",
        "(slice (scalar_mul X1 1 2) 0 0 1)",
        "(scalar_mul (add CA CB) 1 2)",
        "(sum_all (scalar_mul X1 1 2))",
        "(mul (scalar_mul CA 2 3) CB)",
        // Attention: batch split and batch slices.
        "(attention (concat Q1 Q2 0) (concat K1 K2 0) (concat V1 V2 0) 4 1)",
        "(attention (slice Q1 0 0 1) (slice K1 0 0 1) (slice V1 0 0 1) 4 1)",
        // RoPE: batch/hidden concats and the slice duals.
        "(rope (concat R1 R2 0) COS4 SIN4)",
        "(rope (concat R1 R2 2) (concat COS4 COS4 1) (concat SIN4 SIN4 1))",
        "(rope (slice R1 0 0 1) COS4 SIN4)",
        "(rope (slice R1 1 0 2) (slice COS4 0 0 2) (slice SIN4 0 0 2))",
        "(rope (slice R1 2 0 4) (slice COS4 1 0 4) (slice SIN4 1 0 4))",
        // Embedding slices.
        "(embedding EW (slice I1 1 0 2))",
        "(slice (embedding EW I1) 0 0 1)",
        // Matmul: row split, slice duals.
        "(matmul (concat A1 A2 0) B1)",
        "(matmul (slice X 0 0 1) W1)",
        "(matmul X (slice W1 1 0 2))",
        "(slice (matmul X W1) 0 0 1)",
        // Norms over slices.
        "(layer_norm (slice LN1 0 0 1) LW LB)",
        "(slice (layer_norm LN1 LW LB) 0 0 1)",
        "(rms_norm (slice XR1 0 0 1) WN)",
        "(slice (rms_norm XR1 WN) 0 0 1)",
        // Reductions / movement over slices; sum over the concat dim.
        "(mean_dim (slice DA 0 0 1) 1 1)",
        "(softmax (slice X1 0 0 1) 1)",
        "(sum_dim (concat MA MB 1) 1 0)",
        "(transpose (slice TX 0 0 2) 0 1)",
        "(slice (slice XS 0 0 4) 0 1 3)",
    ]
}

/// Audits the full lemma registry with the given options.
pub fn audit_registry(opts: &AuditOptions) -> AuditReport {
    audit_lemmas(&registry(), opts)
}

/// Audits an arbitrary lemma slice against the ground seed corpus.
pub fn audit_lemmas(lemmas: &[Lemma], opts: &AuditOptions) -> AuditReport {
    let mut analysis = TensorAnalysis::default();
    let env = leaf_env();
    for (name, dims, dtype, _) in &env {
        analysis.register_leaf(name, Shape::of(dims), *dtype);
    }
    let mut eg: EGraph<TensorAnalysis> = EGraph::with_analysis(analysis);
    for seed in seed_corpus() {
        let expr: RecExpr = seed
            .parse()
            .unwrap_or_else(|e| panic!("seed {seed:?}: {e}"));
        eg.add_expr(&expr);
    }
    eg.rebuild();

    // Fixed random leaf values: the same tensor backs every occurrence of a
    // leaf, so both sides of a lemma see identical inputs.
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut leaves: HashMap<String, (Shape, DType, Value)> = HashMap::new();
    for (name, dims, dtype, kind) in &env {
        let udims: Vec<usize> = dims.iter().map(|&d| d as usize).collect();
        let value = match kind {
            LeafKind::Uniform => random_value(&mut rng, &udims),
            LeafKind::Ids(high) => random_ids(&mut rng, &udims, *high),
        };
        leaves.insert((*name).to_owned(), (Shape::of(dims), *dtype, value));
    }

    let mut report = AuditReport::default();
    for lemma in lemmas {
        let mut entry = LemmaAuditEntry {
            name: lemma.name.clone(),
            matches: 0,
            shape_checked: 0,
            numeric_checked: 0,
        };
        // Search iterates e-classes in hash order; sort by class id (seed
        // insertion order) so the per-lemma match cap selects the same
        // matches on every run.
        let mut matches = lemma.rewrite.search(&eg);
        matches.sort_by_key(|m| m.eclass.index());
        'matches: for m in &matches {
            for subst in &m.substs {
                if entry.matches >= opts.max_matches_per_lemma {
                    break 'matches;
                }
                let Some(produced) = lemma.rewrite.apply_match(&mut eg, m.eclass, subst) else {
                    continue; // condition rejected this binding
                };
                if produced.is_empty() {
                    continue; // dynamic applier declined
                }
                entry.matches += 1;
                eg.rebuild();
                let lhs_meta = eg[eg.find(m.eclass)].data.clone();
                let extractor = Extractor::new(&eg, AstSize);
                let lhs_term = extractor.find_best(m.eclass).map(|(_, t)| t);
                for rid in produced {
                    check_pair(
                        &mut report,
                        &mut entry,
                        lemma,
                        &eg,
                        &extractor,
                        &lhs_meta,
                        lhs_term.as_ref(),
                        rid,
                        &leaves,
                        opts.tolerance,
                    );
                }
            }
        }
        if entry.matches == 0 {
            report.diagnostics.push(Diagnostic::warning(
                codes::LEMMA_UNCOVERED,
                Anchor::Lemma(lemma.name.clone()),
                "never exercised by the audit's ground seed corpus",
            ));
        }
        report.entries.push(entry);
    }
    report
}

/// Compares one (matched class, produced class) pair for shape and numeric
/// soundness.
#[allow(clippy::too_many_arguments)]
fn check_pair(
    report: &mut AuditReport,
    entry: &mut LemmaAuditEntry,
    lemma: &Lemma,
    eg: &EGraph<TensorAnalysis>,
    extractor: &Extractor<'_, TensorAnalysis, AstSize>,
    lhs_meta: &Meta,
    lhs_term: Option<&RecExpr>,
    rid: entangle_egraph::Id,
    leaves: &HashMap<String, (Shape, DType, Value)>,
    tolerance: f64,
) {
    let rhs_meta = eg[eg.find(rid)].data.clone();
    if let (Some(ls), Some(rs)) = (&lhs_meta.shape, &rhs_meta.shape) {
        entry.shape_checked += 1;
        if ls != rs || lhs_meta.dtype != rhs_meta.dtype {
            report.diagnostics.push(Diagnostic::error(
                codes::LEMMA_SHAPE_UNSOUND,
                Anchor::Lemma(lemma.name.clone()),
                format!(
                    "rewrites a {} {} term into a {} {} term",
                    ls,
                    lhs_meta.dtype.map_or("?".into(), |d| d.to_string()),
                    rs,
                    rhs_meta.dtype.map_or("?".into(), |d| d.to_string()),
                ),
            ));
            return; // a numeric comparison of mismatched shapes is noise
        }
    }
    let (Some(lhs_term), Some((_, rhs_term))) = (lhs_term, extractor.find_best(rid)) else {
        return;
    };
    let (Ok(lv), Ok(rv)) = (
        eval_ground(lhs_term, leaves),
        eval_ground(&rhs_term, leaves),
    ) else {
        return; // not evaluatable (symbolic scalars, unknown leaves)
    };
    if !lv.data().iter().all(|x| x.is_finite()) || !rv.data().iter().all(|x| x.is_finite()) {
        return; // NaN/inf noise, not a lemma soundness signal
    }
    entry.numeric_checked += 1;
    if !lv.allclose(&rv, tolerance) {
        let diff = lv
            .max_abs_diff(&rv)
            .map_or("shape mismatch".to_owned(), |d| {
                format!("max |Δ| = {d:.3e}")
            });
        report.diagnostics.push(
            Diagnostic::error(
                codes::LEMMA_NUMERIC_UNSOUND,
                Anchor::Lemma(lemma.name.clone()),
                format!("numeric mismatch on random tensors ({diff}): {lhs_term} vs {rhs_term}"),
            )
            .with_suggestion("the rewrite changes the computed value; fix or remove the lemma"),
        );
    }
}

/// Evaluates a *ground* term (no pattern variables) bottom-up through the
/// runtime interpreter. Scalar attribute children evaluate to metadata, not
/// values; synthetic `~ones[...]` leaves evaluate to ones tensors.
fn eval_ground(
    expr: &RecExpr,
    leaves: &HashMap<String, (Shape, DType, Value)>,
) -> Result<Value, String> {
    let mut slots: Vec<(Meta, Option<Value>)> = Vec::with_capacity(expr.len());
    for node in expr.nodes() {
        let slot = match node {
            ENode::Int(i) => (Meta::scalar(SymExpr::constant(*i)), None),
            ENode::Sym(e) => (Meta::scalar(e.clone()), None),
            ENode::Op(sym, ch) if ch.is_empty() => {
                let name = sym.as_str();
                if let Some(rest) = name.strip_prefix(SYNTHETIC_LEAF_PREFIX) {
                    let dims = parse_ones_shape(rest)
                        .ok_or_else(|| format!("unparseable synthetic leaf {name:?}"))?;
                    let udims: Vec<usize> = dims.iter().map(|&d| d as usize).collect();
                    let n: usize = udims.iter().product();
                    let value = Value::new(udims, vec![1.0; n]).expect("ones shape");
                    (Meta::tensor(Shape::of(&dims), DType::F32), Some(value))
                } else {
                    let (shape, dtype, value) = leaves
                        .get(name)
                        .ok_or_else(|| format!("unknown leaf {name:?}"))?;
                    (Meta::tensor(shape.clone(), *dtype), Some(value.clone()))
                }
            }
            ENode::Op(sym, ch) => {
                let metas: Vec<Meta> = ch.iter().map(|&c| slots[c.index()].0.clone()).collect();
                let (op, tensor_count) = decode_op(sym.as_str(), &metas)
                    .ok_or_else(|| format!("cannot decode {}", sym.as_str()))?;
                let inputs: Vec<&Value> = ch[..tensor_count]
                    .iter()
                    .map(|&c| {
                        slots[c.index()]
                            .1
                            .as_ref()
                            .ok_or_else(|| "tensor child has no value".to_owned())
                    })
                    .collect::<Result<_, _>>()?;
                let value = eval_op(&op, &inputs).map_err(|e| e.to_string())?;
                let meta_inputs: Option<Vec<(Shape, DType)>> = metas[..tensor_count]
                    .iter()
                    .map(|m| Some((m.shape.clone()?, m.dtype?)))
                    .collect();
                let meta = meta_inputs
                    .and_then(|ins| infer_output(&op, &ins).ok())
                    .map_or_else(Meta::unknown, |(s, d)| Meta::tensor(s, d));
                (meta, Some(value))
            }
        };
        slots.push(slot);
    }
    slots
        .pop()
        .and_then(|(_, v)| v)
        .ok_or_else(|| "root has no value".to_owned())
}

/// Parses the `[2, 3]` suffix of a synthetic ones leaf (`~ones[2, 3]`).
fn parse_ones_shape(rest: &str) -> Option<Vec<i64>> {
    let body = rest
        .strip_prefix("ones")?
        .strip_prefix('[')?
        .strip_suffix(']')?;
    let body = body.trim();
    if body.is_empty() {
        return Some(Vec::new());
    }
    body.split(',')
        .map(|p| p.trim().parse::<i64>().ok())
        .collect()
}
