//! Sequential transformer builders (GPT, Llama-3, Qwen2, MoE).

use entangle_ir::{DType, Graph, GraphBuilder, Op, TensorId};

use crate::config::{ModelConfig, MoeConfig};

/// Architecture family, selecting norm/activation/positional conventions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arch {
    /// LayerNorm + learned positional embeddings + GELU MLP.
    Gpt,
    /// RMSNorm + RoPE + SwiGLU MLP.
    Llama,
    /// Llama-family blocks plus QKV biases (the Qwen2 signature).
    Qwen2,
}

impl Arch {
    fn uses_rope(self) -> bool {
        !matches!(self, Arch::Gpt)
    }

    fn qkv_bias(self) -> bool {
        matches!(self, Arch::Qwen2)
    }
}

/// Builds the Megatron-LM example GPT model (forward pass, logits output).
pub fn gpt(cfg: &ModelConfig) -> Graph {
    build_transformer(cfg, Arch::Gpt, None)
}

/// Builds a Llama-3-style model (forward pass, logits output).
pub fn llama3(cfg: &ModelConfig) -> Graph {
    build_transformer(cfg, Arch::Llama, None)
}

/// Builds a Qwen2-style model (forward pass, logits output).
pub fn qwen2(cfg: &ModelConfig) -> Graph {
    build_transformer(cfg, Arch::Qwen2, None)
}

/// Builds the ByteDance-proprietary-model stand-in: a RoPE/RMSNorm
/// transformer whose FFN is a mixture of experts with a softmax router.
/// Outputs the logits *and* the accumulated auxiliary load-balancing loss.
pub fn moe(cfg: &MoeConfig) -> Graph {
    build_transformer(&cfg.base, Arch::Llama, Some(cfg.experts))
}

/// The concrete interleaved-pair rope tables used by the runtime and the
/// differential tests: pair `(2i, 2i+1)` shares the angle
/// `t / 10000^(2i/h)`.
pub fn rope_tables(seq: usize, hidden: usize) -> (Vec<f64>, Vec<f64>) {
    let mut cos = vec![0.0; seq * hidden];
    let mut sin = vec![0.0; seq * hidden];
    for t in 0..seq {
        for i in 0..hidden / 2 {
            let angle = (t as f64) / 10_000f64.powf(2.0 * i as f64 / hidden as f64);
            for j in [2 * i, 2 * i + 1] {
                cos[t * hidden + j] = angle.cos();
                sin[t * hidden + j] = angle.sin();
            }
        }
    }
    (cos, sin)
}

struct Ctx<'a> {
    g: &'a mut GraphBuilder,
    cfg: &'a ModelConfig,
    arch: Arch,
    rope: Option<(TensorId, TensorId)>,
}

impl Ctx<'_> {
    fn weight(&mut self, name: &str, dims: &[i64]) -> TensorId {
        self.g.input(name, dims, DType::F32)
    }

    fn norm(&mut self, name: &str, prefix: &str, x: TensorId) -> TensorId {
        let h = self.cfg.hidden as i64;
        match self.arch {
            Arch::Gpt => {
                let w = self.weight(&format!("{prefix}_w"), &[h]);
                let b = self.weight(&format!("{prefix}_b"), &[h]);
                self.g
                    .apply(name, Op::LayerNorm, &[x, w, b])
                    .expect("valid norm")
            }
            Arch::Llama | Arch::Qwen2 => {
                let w = self.weight(&format!("{prefix}_w"), &[h]);
                self.g
                    .apply(name, Op::RmsNorm, &[x, w])
                    .expect("valid norm")
            }
        }
    }

    fn linear(&mut self, name: &str, wname: &str, x: TensorId, d_in: i64, d_out: i64) -> TensorId {
        let w = self.weight(wname, &[d_in, d_out]);
        self.g
            .apply(name, Op::Matmul, &[x, w])
            .expect("valid matmul")
    }

    fn attention_block(&mut self, l: usize, x: TensorId) -> TensorId {
        let cfg = self.cfg;
        let h = cfg.hidden as i64;
        let p = format!("L{l}");
        let n1 = self.norm(&format!("{p}.ln1"), &format!("{p}.ln1"), x);

        let mut q = self.linear(&format!("{p}.q"), &format!("{p}.wq"), n1, h, h);
        let mut k = self.linear(&format!("{p}.k"), &format!("{p}.wk"), n1, h, h);
        let v = self.linear(&format!("{p}.v"), &format!("{p}.wv"), n1, h, h);
        if self.arch.qkv_bias() {
            let bq = self.weight(&format!("{p}.bq"), &[h]);
            let bk = self.weight(&format!("{p}.bk"), &[h]);
            q = self
                .g
                .apply(&format!("{p}.qb"), Op::Add, &[q, bq])
                .expect("valid add");
            k = self
                .g
                .apply(&format!("{p}.kb"), Op::Add, &[k, bk])
                .expect("valid add");
        }
        if let Some((cos, sin)) = self.rope {
            q = self
                .g
                .apply(&format!("{p}.q_rope"), Op::Rope, &[q, cos, sin])
                .expect("valid rope");
            k = self
                .g
                .apply(&format!("{p}.k_rope"), Op::Rope, &[k, cos, sin])
                .expect("valid rope");
        }
        let attn = self
            .g
            .apply(
                &format!("{p}.attn"),
                Op::Attention {
                    heads: cfg.heads,
                    causal: cfg.causal,
                },
                &[q, k, v],
            )
            .expect("valid attention");
        let o = self.linear(&format!("{p}.attn_out"), &format!("{p}.wo"), attn, h, h);
        self.g
            .apply(&format!("{p}.res1"), Op::Add, &[x, o])
            .expect("valid residual")
    }

    fn mlp_block(&mut self, l: usize, x: TensorId) -> TensorId {
        let cfg = self.cfg;
        let (h, f) = (cfg.hidden as i64, cfg.ffn as i64);
        let p = format!("L{l}");
        let n2 = self.norm(&format!("{p}.ln2"), &format!("{p}.ln2"), x);
        let m = match self.arch {
            Arch::Gpt => {
                let up = self.linear(&format!("{p}.mlp_up"), &format!("{p}.w1"), n2, h, f);
                let act = self
                    .g
                    .apply(&format!("{p}.mlp_act"), Op::Gelu, &[up])
                    .expect("valid gelu");
                self.linear(&format!("{p}.mlp_down"), &format!("{p}.w2"), act, f, h)
            }
            Arch::Llama | Arch::Qwen2 => {
                let gate = self.linear(&format!("{p}.mlp_gate"), &format!("{p}.w1"), n2, h, f);
                let up = self.linear(&format!("{p}.mlp_upproj"), &format!("{p}.w3"), n2, h, f);
                let act = self
                    .g
                    .apply(&format!("{p}.mlp_silu"), Op::Silu, &[gate])
                    .expect("valid silu");
                let prod = self
                    .g
                    .apply(&format!("{p}.mlp_mul"), Op::Mul, &[act, up])
                    .expect("valid mul");
                self.linear(&format!("{p}.mlp_down"), &format!("{p}.w2"), prod, f, h)
            }
        };
        self.g
            .apply(&format!("{p}.res2"), Op::Add, &[x, m])
            .expect("valid residual")
    }

    /// An MoE FFN block: softmax router over experts, per-expert SwiGLU,
    /// gate-weighted combination, plus this layer's auxiliary loss (the
    /// mean squared gate load — a load-balancing penalty).
    fn moe_block(&mut self, l: usize, x: TensorId, experts: usize) -> (TensorId, TensorId) {
        let cfg = self.cfg;
        let (h, f, e) = (cfg.hidden as i64, cfg.ffn as i64, experts as i64);
        let p = format!("L{l}");
        let n2 = self.norm(&format!("{p}.ln2"), &format!("{p}.ln2"), x);
        let router = self.linear(&format!("{p}.router"), &format!("{p}.wr"), n2, h, e);
        let gates = self
            .g
            .apply(&format!("{p}.gates"), Op::Softmax { dim: 2 }, &[router])
            .expect("valid softmax");
        let mut combined: Option<TensorId> = None;
        for ex in 0..experts {
            let gate = self
                .g
                .apply(
                    &format!("{p}.gate{ex}"),
                    Op::Slice {
                        dim: 2,
                        start: (ex as i64).into(),
                        end: (ex as i64 + 1).into(),
                    },
                    &[gates],
                )
                .expect("valid gate slice");
            let up = self.linear(
                &format!("{p}.e{ex}_gateproj"),
                &format!("{p}.e{ex}_w1"),
                n2,
                h,
                f,
            );
            let act = self
                .g
                .apply(&format!("{p}.e{ex}_silu"), Op::Silu, &[up])
                .expect("valid silu");
            let down = self.linear(
                &format!("{p}.e{ex}_down"),
                &format!("{p}.e{ex}_w2"),
                act,
                f,
                h,
            );
            let weighted = self
                .g
                .apply(&format!("{p}.e{ex}_weighted"), Op::Mul, &[down, gate])
                .expect("valid gated mul");
            combined = Some(match combined {
                None => weighted,
                Some(acc) => self
                    .g
                    .apply(&format!("{p}.moe_sum{ex}"), Op::Add, &[acc, weighted])
                    .expect("valid expert sum"),
            });
        }
        let m = combined.expect("at least one expert");
        let out = self
            .g
            .apply(&format!("{p}.res2"), Op::Add, &[x, m])
            .expect("valid residual");
        // Auxiliary loss: sum over experts of the squared mean gate value.
        let load_b = self
            .g
            .apply(
                &format!("{p}.load_b"),
                Op::MeanDim {
                    dim: 0,
                    keepdim: false,
                },
                &[gates],
            )
            .expect("valid mean");
        let load = self
            .g
            .apply(
                &format!("{p}.load"),
                Op::MeanDim {
                    dim: 0,
                    keepdim: false,
                },
                &[load_b],
            )
            .expect("valid mean");
        let sq = self
            .g
            .apply(&format!("{p}.load_sq"), Op::Mul, &[load, load])
            .expect("valid mul");
        let aux = self
            .g
            .apply(&format!("{p}.aux"), Op::SumAll, &[sq])
            .expect("valid sum");
        (out, aux)
    }
}

fn build_transformer(cfg: &ModelConfig, arch: Arch, experts: Option<usize>) -> Graph {
    let mut g = GraphBuilder::new(match (arch, experts) {
        (Arch::Gpt, _) => "gpt",
        (Arch::Llama, None) => "llama3",
        (Arch::Llama, Some(_)) => "moe",
        (Arch::Qwen2, _) => "qwen2",
    });
    let (b, s, h, v) = (
        cfg.batch as i64,
        cfg.seq as i64,
        cfg.hidden as i64,
        cfg.vocab as i64,
    );
    let ids = g.input("ids", &[b, s], DType::I64);
    let wtok = g.input("wtok", &[v, h], DType::F32);
    let mut x = g
        .apply("embed", Op::Embedding, &[wtok, ids])
        .expect("valid embedding");
    let rope = if arch.uses_rope() {
        let cos = g.input("rope_cos", &[s, h], DType::F32);
        let sin = g.input("rope_sin", &[s, h], DType::F32);
        Some((cos, sin))
    } else {
        let wpos = g.input("wpos", &[s, h], DType::F32);
        x = g
            .apply("pos_embed", Op::Add, &[x, wpos])
            .expect("valid add");
        None
    };

    let mut aux_total: Option<TensorId> = None;
    let mut ctx = Ctx {
        g: &mut g,
        cfg,
        arch,
        rope,
    };
    for l in 0..cfg.layers {
        x = ctx.attention_block(l, x);
        match experts {
            None => x = ctx.mlp_block(l, x),
            Some(e) => {
                let (out, aux) = ctx.moe_block(l, x, e);
                x = out;
                aux_total = Some(match aux_total {
                    None => aux,
                    Some(acc) => ctx
                        .g
                        .apply(&format!("aux_acc{l}"), Op::Add, &[acc, aux])
                        .expect("valid aux accumulation"),
                });
            }
        }
    }
    let nf = ctx.norm("ln_f", "ln_f", x);
    let wlm = g.input("wlm", &[h, v], DType::F32);
    let logits = g
        .apply("logits", Op::Matmul, &[nf, wlm])
        .expect("valid matmul");
    g.mark_output(logits);
    if let Some(aux) = aux_total {
        g.mark_output(aux);
    }
    g.finish().expect("zoo models are valid by construction")
}
