//! The HuggingFace-trainer-style MSE regression model (Table 2's
//! gradient-accumulation workload).

use entangle_ir::{DType, Graph, GraphBuilder, Op};

/// Hyperparameters of the regression workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegressionConfig {
    /// Number of samples in the (full) batch.
    pub batch: usize,
    /// Input feature dimension.
    pub features: usize,
}

impl RegressionConfig {
    /// The test-sized configuration.
    pub fn tiny() -> RegressionConfig {
        RegressionConfig {
            batch: 8,
            features: 4,
        }
    }
}

/// Builds the sequential regression model: `loss = MSE(x·w + b, y)`.
///
/// # Examples
///
/// ```
/// use entangle_models::{regression, RegressionConfig};
///
/// let g = regression(&RegressionConfig::tiny());
/// assert_eq!(g.outputs().len(), 1);
/// assert_eq!(g.tensor(g.outputs()[0]).shape.rank(), 0); // scalar loss
/// ```
pub fn regression(cfg: &RegressionConfig) -> Graph {
    let (n, f) = (cfg.batch as i64, cfg.features as i64);
    let mut g = GraphBuilder::new("regression");
    let x = g.input("x", &[n, f], DType::F32);
    let w = g.input("w", &[f, 1], DType::F32);
    let b = g.input("b", &[1], DType::F32);
    let y = g.input("y", &[n, 1], DType::F32);
    let xw = g.apply("xw", Op::Matmul, &[x, w]).expect("valid matmul");
    let pred = g.apply("pred", Op::Add, &[xw, b]).expect("valid add");
    let loss = g.apply("loss", Op::MseLoss, &[pred, y]).expect("valid mse");
    g.mark_output(loss);
    g.finish()
        .expect("regression model is valid by construction")
}

/// Builds the regression model with a *sum*-semantics loss:
/// `loss = Σ (pred − y)²`.
///
/// Sum losses are what make data-parallel gradient *summation* exact: shard
/// losses and shard gradients add up to the sequential ones with no
/// leftover `1/N` factors, so every backward intermediate maps cleanly
/// (see `entangle_parallel::data_parallel_training`). Mean losses put a
/// batch-size scale inside every per-replica gradient — a structural
/// mismatch the checker (by the paper's §3.3 assumptions) rejects.
pub fn regression_sum_loss(cfg: &RegressionConfig) -> Graph {
    let (n, f) = (cfg.batch as i64, cfg.features as i64);
    let mut g = GraphBuilder::new("regression-sum");
    let x = g.input("x", &[n, f], DType::F32);
    let w = g.input("w", &[f, 1], DType::F32);
    let b = g.input("b", &[1], DType::F32);
    let y = g.input("y", &[n, 1], DType::F32);
    let xw = g.apply("xw", Op::Matmul, &[x, w]).expect("valid matmul");
    let pred = g.apply("pred", Op::Add, &[xw, b]).expect("valid add");
    let diff = g.apply("diff", Op::Sub, &[pred, y]).expect("valid sub");
    let sq = g.apply("sq", Op::Mul, &[diff, diff]).expect("valid mul");
    let loss = g.apply("loss", Op::SumAll, &[sq]).expect("valid sum");
    g.mark_output(loss);
    g.finish()
        .expect("regression model is valid by construction")
}

/// Builds a full sequential *training step* for the regression model, with
/// explicit gradient computation: outputs the loss and the weight gradient
/// `∂loss/∂w = (2/N) · xᵀ(pred − y)`.
///
/// This is the `G_s` for the data-parallel strategy — a workload the paper
/// could not evaluate ("DP is optimized with contiguous buffers … not
/// exposed to TorchDynamo", §6.1) but whose graphs this reproduction can
/// build directly.
///
/// # Examples
///
/// ```
/// use entangle_models::{regression_training, RegressionConfig};
///
/// let g = regression_training(&RegressionConfig::tiny());
/// assert_eq!(g.outputs().len(), 2); // loss + weight gradient
/// ```
pub fn regression_training(cfg: &RegressionConfig) -> Graph {
    let (n, f) = (cfg.batch as i64, cfg.features as i64);
    let mut g = GraphBuilder::new("regression-train");
    let x = g.input("x", &[n, f], DType::F32);
    let w = g.input("w", &[f, 1], DType::F32);
    let b = g.input("b", &[1], DType::F32);
    let y = g.input("y", &[n, 1], DType::F32);
    let xw = g.apply("xw", Op::Matmul, &[x, w]).expect("valid matmul");
    let pred = g.apply("pred", Op::Add, &[xw, b]).expect("valid add");
    let loss = g.apply("loss", Op::MseLoss, &[pred, y]).expect("valid mse");
    // Backward: d loss / d w = (2/N) xᵀ (pred - y).
    let err = g.apply("err", Op::Sub, &[pred, y]).expect("valid sub");
    let xt = g
        .apply("xT", Op::Transpose { d0: 0, d1: 1 }, &[x])
        .expect("valid transpose");
    let xte = g
        .apply("xTe", Op::Matmul, &[xt, err])
        .expect("valid matmul");
    let grad_w = g
        .apply("grad_w", Op::ScalarMul { numer: 2, denom: n }, &[xte])
        .expect("valid scale");
    g.mark_output(loss);
    g.mark_output(grad_w);
    g.finish().expect("training graph is valid by construction")
}
