//! Sequential model zoo: the `G_s` side of the paper's evaluation (Table 2).
//!
//! These builders play the role of TorchDynamo capture: they emit the
//! computation graph a framework's sequential (single-GPU) model would trace
//! to — the same operator mix, the same fused kernels (attention, RoPE,
//! RMSNorm), the same weight layout — parameterized by [`ModelConfig`] so
//! the scalability experiments (Figure 4) can sweep layer counts.
//!
//! The zoo covers the paper's workloads:
//!
//! - [`gpt`] — the Megatron-LM GPT example: LayerNorm, learned positional
//!   embeddings, GELU MLP, causal fused attention, vocabulary projection.
//! - [`llama3`] — the Transformers-NeuronX Llama-3 path: RMSNorm, RoPE,
//!   SwiGLU MLP.
//! - [`qwen2`] — the vLLM Qwen2 path: Llama-family blocks plus QKV biases.
//! - [`moe`] — the ByteDance-proprietary-model stand-in: an MoE transformer
//!   with a softmax router, per-expert SwiGLU FFNs and an auxiliary
//!   load-balancing loss output.
//! - [`regression`] — HuggingFace's MSE-regression trainer test, the
//!   gradient-accumulation workload.
//!
//! Weight tensors follow a systematic naming scheme (`L{i}.wq`, `L{i}.ln1_w`,
//! …) that the distribution strategies in `entangle-parallel` reference when
//! emitting input relations.
//!
//! # Examples
//!
//! ```
//! use entangle_models::{gpt, ModelConfig};
//!
//! let cfg = ModelConfig::tiny();
//! let g = gpt(&cfg);
//! assert!(g.num_nodes() > 10);
//! assert_eq!(g.outputs().len(), 1); // the logits
//! ```

#![forbid(unsafe_code)]

mod config;
mod regression;
mod transformer;

pub use config::{ModelConfig, MoeConfig};
pub use regression::{regression, regression_sum_loss, regression_training, RegressionConfig};
pub use transformer::{gpt, llama3, moe, qwen2, rope_tables, Arch};

#[cfg(test)]
mod tests;
