use std::collections::HashMap;

use entangle_ir::DType;
use entangle_runtime::{eval_graph, random_ids, random_value, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::*;

fn run_model(g: &entangle_ir::Graph, seed: u64) -> HashMap<entangle_ir::TensorId, Value> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut inputs = HashMap::new();
    for &i in g.inputs() {
        let t = g.tensor(i);
        let dims: Vec<usize> = t
            .shape
            .as_concrete()
            .expect("concrete shapes")
            .iter()
            .map(|&d| d as usize)
            .collect();
        let v = match t.dtype {
            DType::I64 => random_ids(&mut rng, &dims, 8),
            _ if t.name == "rope_cos" || t.name == "rope_sin" => {
                let (cos, sin) = rope_tables(dims[0], dims[1]);
                let data = if t.name == "rope_cos" { cos } else { sin };
                Value::new(dims.clone(), data).unwrap()
            }
            _ => random_value(&mut rng, &dims),
        };
        inputs.insert(i, v);
    }
    eval_graph(g, &inputs).expect("model evaluates")
}

#[test]
fn gpt_builds_and_runs() {
    let cfg = ModelConfig::tiny();
    let g = gpt(&cfg);
    g.validate().unwrap();
    let env = run_model(&g, 1);
    let logits = &env[&g.outputs()[0]];
    assert_eq!(logits.shape(), &[cfg.batch, cfg.seq, cfg.vocab]);
    assert!(logits.data().iter().all(|v| v.is_finite()));
}

#[test]
fn llama3_builds_and_runs() {
    let cfg = ModelConfig::tiny();
    let g = llama3(&cfg);
    g.validate().unwrap();
    // Uses RoPE tables, not positional embeddings.
    assert!(g.tensor_by_name("rope_cos").is_some());
    assert!(g.tensor_by_name("wpos").is_none());
    let env = run_model(&g, 2);
    assert_eq!(
        env[&g.outputs()[0]].shape(),
        &[cfg.batch, cfg.seq, cfg.vocab]
    );
}

#[test]
fn qwen2_has_qkv_biases() {
    let cfg = ModelConfig::tiny();
    let g = qwen2(&cfg);
    g.validate().unwrap();
    assert!(g.tensor_by_name("L0.bq").is_some());
    assert!(g.tensor_by_name("L0.bk").is_some());
    // Llama does not.
    assert!(llama3(&cfg).tensor_by_name("L0.bq").is_none());
    let env = run_model(&g, 3);
    assert!(env[&g.outputs()[0]].data().iter().all(|v| v.is_finite()));
}

#[test]
fn moe_outputs_logits_and_aux_loss() {
    let cfg = MoeConfig::tiny();
    let g = moe(&cfg);
    g.validate().unwrap();
    assert_eq!(g.outputs().len(), 2);
    let env = run_model(&g, 4);
    let aux = &env[&g.outputs()[1]];
    assert_eq!(aux.rank(), 0);
    // Gates are a softmax over experts: mean load sums to 1, so the aux
    // loss (sum of squared mean loads) lies in [1/E, 1].
    let e = cfg.experts as f64;
    assert!(aux.as_scalar() >= 1.0 / e - 1e-9 && aux.as_scalar() <= 1.0 + 1e-9);
}

#[test]
fn moe_expert_count_scales_graph() {
    let small = moe(&MoeConfig {
        experts: 2,
        ..MoeConfig::tiny()
    });
    let large = moe(&MoeConfig {
        experts: 6,
        ..MoeConfig::tiny()
    });
    assert!(large.num_nodes() > small.num_nodes());
}

#[test]
fn moe_layers_scale_stack_linearly() {
    let cfg = MoeConfig::tiny();
    let n1 = moe(&cfg.with_layers(1)).num_nodes();
    let n2 = moe(&cfg.with_layers(2)).num_nodes();
    let n4 = moe(&cfg.with_layers(4)).num_nodes();
    assert_eq!(n2 - n1, (n4 - n2) / 2, "per-layer node count is constant");
    assert!(n4 > n2 && n2 > n1);
    moe(&cfg.with_layers(3)).validate().unwrap();
}

#[test]
fn deep_builders_validate() {
    // The BENCH_scale deep models: 32-layer dense stacks and a deep MoE
    // stack must stay well-formed (every layer re-wires residuals, rope
    // tables and per-layer weights correctly).
    let cfg = ModelConfig::tiny().with_layers(32);
    llama3(&cfg).validate().unwrap();
    qwen2(&cfg).validate().unwrap();
    moe(&MoeConfig::tiny().with_layers(8)).validate().unwrap();
}

#[test]
fn regression_builds_and_runs() {
    let g = regression(&RegressionConfig::tiny());
    g.validate().unwrap();
    let env = run_model(&g, 5);
    let loss = &env[&g.outputs()[0]];
    assert_eq!(loss.rank(), 0);
    assert!(loss.as_scalar() >= 0.0);
}

#[test]
fn layers_scale_node_count_linearly() {
    let cfg = ModelConfig::tiny();
    let n1 = gpt(&cfg.with_layers(1)).num_nodes();
    let n2 = gpt(&cfg.with_layers(2)).num_nodes();
    let n4 = gpt(&cfg.with_layers(4)).num_nodes();
    assert_eq!(n2 - n1, (n4 - n2) / 2, "per-layer node count is constant");
    assert!(n4 > n2 && n2 > n1);
}

#[test]
fn weight_naming_is_systematic() {
    let g = gpt(&ModelConfig::tiny().with_layers(2));
    for l in 0..2 {
        for suffix in ["wq", "wk", "wv", "wo", "w1", "w2", "ln1_w", "ln2_w"] {
            assert!(
                g.tensor_by_name(&format!("L{l}.{suffix}")).is_some(),
                "missing L{l}.{suffix}"
            );
        }
    }
    assert!(g.tensor_by_name("wtok").is_some());
    assert!(g.tensor_by_name("wlm").is_some());
    assert!(g.tensor_by_name("wpos").is_some());
}

#[test]
fn causal_flag_respected() {
    let mut cfg = ModelConfig::tiny();
    cfg.causal = true;
    let g = gpt(&cfg);
    let has_causal_attn = g
        .nodes()
        .iter()
        .any(|n| matches!(n.op, entangle_ir::Op::Attention { causal: true, .. }));
    assert!(has_causal_attn);
}

#[test]
fn rope_tables_are_pairwise() {
    let (cos, sin) = rope_tables(4, 8);
    assert_eq!(cos.len(), 32);
    for t in 0..4 {
        for i in 0..4 {
            assert_eq!(cos[t * 8 + 2 * i], cos[t * 8 + 2 * i + 1]);
            assert_eq!(sin[t * 8 + 2 * i], sin[t * 8 + 2 * i + 1]);
            // cos² + sin² = 1
            let c = cos[t * 8 + 2 * i];
            let s = sin[t * 8 + 2 * i];
            assert!((c * c + s * s - 1.0).abs() < 1e-12);
        }
    }
    // Position 0 is the identity rotation.
    assert!(cos[..8].iter().all(|&c| c == 1.0));
    assert!(sin[..8].iter().all(|&s| s == 0.0));
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(8))]

        /// Every zoo model validates and evaluates for random small configs.
        #[test]
        fn zoo_models_are_well_formed(
            layers in 1usize..3,
            heads_pow in 0u32..2,
            seed in 0u64..100,
        ) {
            let heads = 2usize.pow(heads_pow);
            let cfg = ModelConfig {
                layers,
                heads,
                hidden: heads * 4,
                ffn: heads * 8,
                ..ModelConfig::tiny()
            };
            for g in [gpt(&cfg), llama3(&cfg), qwen2(&cfg)] {
                g.validate().unwrap();
                let env = run_model(&g, seed);
                let out = &env[&g.outputs()[0]];
                prop_assert!(out.data().iter().all(|v| v.is_finite()));
            }
        }
    }
}
