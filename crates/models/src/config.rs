//! Model hyperparameters.

/// Transformer hyperparameters shared by all zoo models.
///
/// # Examples
///
/// ```
/// use entangle_models::ModelConfig;
///
/// let cfg = ModelConfig { layers: 2, ..ModelConfig::tiny() };
/// assert_eq!(cfg.head_dim(), cfg.hidden / cfg.heads);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelConfig {
    /// Batch size.
    pub batch: usize,
    /// Sequence length.
    pub seq: usize,
    /// Hidden (model) dimension.
    pub hidden: usize,
    /// Number of attention heads (`hidden % heads == 0`).
    pub heads: usize,
    /// Number of transformer layers.
    pub layers: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// FFN inner dimension.
    pub ffn: usize,
    /// Causal attention mask.
    pub causal: bool,
}

impl ModelConfig {
    /// A laptop-sized configuration used throughout the tests.
    pub fn tiny() -> ModelConfig {
        ModelConfig {
            batch: 2,
            seq: 8,
            hidden: 16,
            heads: 4,
            layers: 1,
            vocab: 32,
            ffn: 32,
            causal: true,
        }
    }

    /// The per-head dimension.
    ///
    /// # Panics
    ///
    /// Panics when `hidden` is not divisible by `heads`.
    pub fn head_dim(&self) -> usize {
        assert_eq!(self.hidden % self.heads, 0, "hidden must divide by heads");
        self.hidden / self.heads
    }

    /// Returns a copy with a different layer count (Figure 4 sweeps).
    pub fn with_layers(&self, layers: usize) -> ModelConfig {
        ModelConfig {
            layers,
            ..self.clone()
        }
    }
}

/// Mixture-of-experts extension of [`ModelConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MoeConfig {
    /// The base transformer configuration.
    pub base: ModelConfig,
    /// Number of experts per MoE layer.
    pub experts: usize,
}

impl MoeConfig {
    /// A laptop-sized MoE configuration.
    pub fn tiny() -> MoeConfig {
        MoeConfig {
            base: ModelConfig::tiny(),
            experts: 4,
        }
    }

    /// Returns a copy with a different layer count: a deep MoE *stack*,
    /// each layer carrying its own router, experts and load-balance head
    /// (the BENCH_scale deep-model sweeps).
    pub fn with_layers(&self, layers: usize) -> MoeConfig {
        MoeConfig {
            base: self.base.with_layers(layers),
            experts: self.experts,
        }
    }
}
