//! Span-tree reconstruction, validation, and export.

use std::fmt;

use crate::json_str;
use crate::sink::{Record, RecordKind};

/// A completed span in a [`TraceReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpan {
    /// Span id (unique within the trace).
    pub id: u64,
    /// Enclosing span id, `None` at the root.
    pub parent: Option<u64>,
    /// Span name.
    pub name: String,
    /// Start, microseconds since the trace epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Attributes from the span's `end` record.
    pub attrs: Vec<(String, String)>,
}

impl TraceSpan {
    /// Looks up one attribute.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// An event in a [`TraceReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedRecord {
    /// Event id.
    pub id: u64,
    /// Enclosing span id.
    pub parent: Option<u64>,
    /// Event name.
    pub name: String,
    /// Timestamp, microseconds since the trace epoch.
    pub t_us: u64,
    /// Optional duration (externally timed events).
    pub dur_us: Option<u64>,
    /// Attributes.
    pub attrs: Vec<(String, String)>,
}

/// A malformed or unbalanced trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError(pub String);

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid trace: {}", self.0)
    }
}

impl std::error::Error for TraceError {}

/// A validated trace: completed spans (in close order) and events (in
/// emission order).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceReport {
    /// Completed spans, in the order they closed.
    pub spans: Vec<TraceSpan>,
    /// Events, in emission order.
    pub events: Vec<ParsedRecord>,
}

impl TraceReport {
    /// Reconstructs the span tree from a record stream, enforcing balance:
    /// every `begin` is closed by an `end` with the same id, closes are
    /// strictly LIFO, and `end`/`event` records never reference unknown
    /// spans.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] describing the first violation.
    pub fn from_records(records: &[Record]) -> Result<TraceReport, TraceError> {
        let mut open: Vec<(u64, Option<u64>, String, u64)> = Vec::new();
        let mut report = TraceReport::default();
        for (i, rec) in records.iter().enumerate() {
            match rec.kind {
                RecordKind::Begin => {
                    if let Some(parent) = rec.parent {
                        if !open.iter().any(|(id, ..)| *id == parent) {
                            return Err(TraceError(format!(
                                "record {i}: begin {} names parent {parent}, which is not open",
                                rec.id
                            )));
                        }
                    }
                    open.push((rec.id, rec.parent, rec.name.clone(), rec.t_us));
                }
                RecordKind::End => {
                    let Some((id, parent, name, start_us)) = open.pop() else {
                        return Err(TraceError(format!(
                            "record {i}: end {} with no open span",
                            rec.id
                        )));
                    };
                    if id != rec.id {
                        return Err(TraceError(format!(
                            "record {i}: end {} closes out of order (innermost open span is {id})",
                            rec.id
                        )));
                    }
                    if name != rec.name {
                        return Err(TraceError(format!(
                            "record {i}: end {} is named {:?} but its begin was {name:?}",
                            rec.id, rec.name
                        )));
                    }
                    report.spans.push(TraceSpan {
                        id,
                        parent,
                        name,
                        start_us,
                        dur_us: rec.dur_us.unwrap_or(rec.t_us.saturating_sub(start_us)),
                        attrs: rec.attrs.clone(),
                    });
                }
                RecordKind::Event => {
                    if let Some(parent) = rec.parent {
                        if !open.iter().any(|(id, ..)| *id == parent) {
                            return Err(TraceError(format!(
                                "record {i}: event {} names parent {parent}, which is not open",
                                rec.id
                            )));
                        }
                    }
                    report.events.push(ParsedRecord {
                        id: rec.id,
                        parent: rec.parent,
                        name: rec.name.clone(),
                        t_us: rec.t_us,
                        dur_us: rec.dur_us,
                        attrs: rec.attrs.clone(),
                    });
                }
            }
        }
        if let Some((id, _, name, _)) = open.last() {
            return Err(TraceError(format!("span {id} ({name:?}) was never closed")));
        }
        Ok(report)
    }

    /// Parses and validates a JSON-lines trace document.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] on the first unparsable line or balance
    /// violation.
    pub fn from_jsonl(text: &str) -> Result<TraceReport, TraceError> {
        let mut records = Vec::new();
        for (no, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            records
                .push(parse_record(line).map_err(|e| TraceError(format!("line {}: {e}", no + 1)))?);
        }
        TraceReport::from_records(&records)
    }

    /// All spans with this name, in close order.
    pub fn spans_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a TraceSpan> {
        self.spans.iter().filter(move |s| s.name == name)
    }

    /// The first span with this name, if any.
    pub fn find(&self, name: &str) -> Option<&TraceSpan> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// A span's direct children, in close order.
    pub fn children_of(&self, id: u64) -> Vec<&TraceSpan> {
        self.spans.iter().filter(|s| s.parent == Some(id)).collect()
    }

    /// Total duration of all spans with this name (µs).
    pub fn total_us(&self, name: &str) -> u64 {
        self.spans_named(name).map(|s| s.dur_us).sum()
    }

    /// Renders the report as one JSON document with stable field order.
    pub fn to_json(&self) -> String {
        let attrs_json = |attrs: &[(String, String)]| {
            let body: Vec<String> = attrs
                .iter()
                .map(|(k, v)| format!("{}:{}", json_str(k), json_str(v)))
                .collect();
            format!("{{{}}}", body.join(","))
        };
        let spans: Vec<String> = self
            .spans
            .iter()
            .map(|s| {
                format!(
                    "{{\"id\":{},\"parent\":{},\"name\":{},\"start_us\":{},\"dur_us\":{},\
                     \"attrs\":{}}}",
                    s.id,
                    s.parent.map_or("null".to_owned(), |p| p.to_string()),
                    json_str(&s.name),
                    s.start_us,
                    s.dur_us,
                    attrs_json(&s.attrs),
                )
            })
            .collect();
        let events: Vec<String> = self
            .events
            .iter()
            .map(|e| {
                format!(
                    "{{\"id\":{},\"parent\":{},\"name\":{},\"t_us\":{},\"dur_us\":{},\
                     \"attrs\":{}}}",
                    e.id,
                    e.parent.map_or("null".to_owned(), |p| p.to_string()),
                    json_str(&e.name),
                    e.t_us,
                    e.dur_us.map_or("null".to_owned(), |d| d.to_string()),
                    attrs_json(&e.attrs),
                )
            })
            .collect();
        format!(
            "{{\"version\":1,\"spans\":[{}],\"events\":[{}]}}",
            spans.join(","),
            events.join(",")
        )
    }

    /// Exports the Chrome trace-event format (a `traceEvents` array of
    /// complete `"X"` and instant `"i"` events), loadable in
    /// `chrome://tracing` and Perfetto.
    pub fn to_chrome_json(&self) -> String {
        let args_json = |attrs: &[(String, String)]| {
            let body: Vec<String> = attrs
                .iter()
                .map(|(k, v)| format!("{}:{}", json_str(k), json_str(v)))
                .collect();
            format!("{{{}}}", body.join(","))
        };
        let mut events: Vec<String> = Vec::with_capacity(self.spans.len() + self.events.len());
        for s in &self.spans {
            events.push(format!(
                "{{\"name\":{},\"cat\":\"entangle\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":1,\"tid\":1,\"args\":{}}}",
                json_str(&s.name),
                s.start_us,
                s.dur_us,
                args_json(&s.attrs),
            ));
        }
        for e in &self.events {
            match e.dur_us {
                Some(d) => events.push(format!(
                    "{{\"name\":{},\"cat\":\"entangle\",\"ph\":\"X\",\"ts\":{},\"dur\":{d},\
                     \"pid\":1,\"tid\":1,\"args\":{}}}",
                    json_str(&e.name),
                    e.t_us,
                    args_json(&e.attrs),
                )),
                None => events.push(format!(
                    "{{\"name\":{},\"cat\":\"entangle\",\"ph\":\"i\",\"ts\":{},\"s\":\"t\",\
                     \"pid\":1,\"tid\":1,\"args\":{}}}",
                    json_str(&e.name),
                    e.t_us,
                    args_json(&e.attrs),
                )),
            }
        }
        format!("{{\"traceEvents\":[{}]}}", events.join(","))
    }
}

/// Parses one JSON-lines record. The grammar is the subset our sinks emit:
/// one object per line, keys `type/id/parent/name/t_us/dur_us/attrs`,
/// values are strings, non-negative integers, `null`, or (for `attrs`) one
/// flat object of string values.
fn parse_record(line: &str) -> Result<Record, String> {
    let mut p = Parser {
        chars: line.char_indices().peekable(),
        src: line,
    };
    let fields = p.object()?;
    p.skip_ws();
    if p.chars.peek().is_some() {
        return Err("trailing characters after record object".to_owned());
    }
    let mut kind = None;
    let mut id = None;
    let mut parent = None;
    let mut name = None;
    let mut t_us = None;
    let mut dur_us = None;
    let mut attrs = Vec::new();
    for (key, value) in fields {
        match (key.as_str(), value) {
            ("type", Value::Str(s)) => {
                kind = Some(match s.as_str() {
                    "begin" => RecordKind::Begin,
                    "end" => RecordKind::End,
                    "event" => RecordKind::Event,
                    other => return Err(format!("unknown record type {other:?}")),
                });
            }
            ("id", Value::Num(n)) => id = Some(n),
            ("parent", Value::Num(n)) => parent = Some(n),
            ("parent", Value::Null) => parent = None,
            ("name", Value::Str(s)) => name = Some(s),
            ("t_us", Value::Num(n)) => t_us = Some(n),
            ("dur_us", Value::Num(n)) => dur_us = Some(n),
            ("attrs", Value::Obj(kvs)) => {
                for (k, v) in kvs {
                    match v {
                        Value::Str(s) => attrs.push((k, s)),
                        other => return Err(format!("attr {k:?} is not a string: {other:?}")),
                    }
                }
            }
            (key, value) => return Err(format!("unexpected field {key:?} = {value:?}")),
        }
    }
    Ok(Record {
        kind: kind.ok_or("missing \"type\"")?,
        id: id.ok_or("missing \"id\"")?,
        parent,
        name: name.ok_or("missing \"name\"")?,
        t_us: t_us.ok_or("missing \"t_us\"")?,
        dur_us,
        attrs,
    })
}

#[derive(Debug)]
enum Value {
    Str(String),
    Num(u64),
    Null,
    Obj(Vec<(String, Value)>),
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    src: &'a str,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some((_, c)) if c.is_whitespace()) {
            self.chars.next();
        }
    }

    fn expect(&mut self, want: char) -> Result<(), String> {
        self.skip_ws();
        match self.chars.next() {
            Some((_, c)) if c == want => Ok(()),
            Some((i, c)) => Err(format!("expected {want:?} at byte {i}, found {c:?}")),
            None => Err(format!("expected {want:?}, found end of line")),
        }
    }

    fn object(&mut self) -> Result<Vec<(String, Value)>, String> {
        self.expect('{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if matches!(self.chars.peek(), Some((_, '}'))) {
            self.chars.next();
            return Ok(fields);
        }
        loop {
            let key = self.string()?;
            self.expect(':')?;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.chars.next() {
                Some((_, ',')) => continue,
                Some((_, '}')) => return Ok(fields),
                Some((i, c)) => {
                    return Err(format!("expected ',' or '}}' at byte {i}, found {c:?}"))
                }
                None => return Err("unterminated object".to_owned()),
            }
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.chars.peek().copied() {
            Some((_, '"')) => Ok(Value::Str(self.string()?)),
            Some((_, '{')) => Ok(Value::Obj(self.object()?)),
            Some((_, 'n')) => {
                for want in "null".chars() {
                    match self.chars.next() {
                        Some((_, c)) if c == want => {}
                        _ => return Err("malformed null literal".to_owned()),
                    }
                }
                Ok(Value::Null)
            }
            Some((start, c)) if c.is_ascii_digit() => {
                let mut end = start;
                while let Some(&(i, c)) = self.chars.peek() {
                    if c.is_ascii_digit() {
                        end = i + c.len_utf8();
                        self.chars.next();
                    } else {
                        break;
                    }
                }
                self.src[start..end]
                    .parse::<u64>()
                    .map(Value::Num)
                    .map_err(|e| format!("bad number: {e}"))
            }
            Some((i, c)) => Err(format!("unexpected value start {c:?} at byte {i}")),
            None => Err("expected a value, found end of line".to_owned()),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.chars.next() {
                Some((_, '"')) => return Ok(out),
                Some((_, '\\')) => match self.chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, '/')) => out.push('/'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'u')) => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .chars
                                .next()
                                .and_then(|(_, c)| c.to_digit(16))
                                .ok_or("malformed \\u escape")?;
                            code = code * 16 + d;
                        }
                        out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                    }
                    other => return Err(format!("unknown escape {other:?}")),
                },
                Some((_, c)) => out.push(c),
                None => return Err("unterminated string".to_owned()),
            }
        }
    }
}
