use crate::{Record, RecordKind, TraceReport, Tracer};

#[test]
fn null_tracer_is_inert() {
    let t = Tracer::null();
    assert!(!t.is_enabled());
    assert_eq!(t.now_us(), 0);
    let mut sp = t.span("anything");
    sp.attr("k", "v");
    assert_eq!(sp.id(), 0);
    t.event("nothing", &[("a", "b".to_owned())]);
}

#[test]
fn spans_nest_and_balance() {
    let (t, sink) = Tracer::collect();
    {
        let mut root = t.span("root");
        root.attr("outcome", "ok");
        {
            let _inner = t.span("inner");
            t.event("tick", &[("n", "1".to_owned())]);
        }
        let _sibling = t.span("sibling");
    }
    let report = TraceReport::from_records(&sink.records()).unwrap();
    // Close order: inner, sibling, root.
    assert_eq!(
        report
            .spans
            .iter()
            .map(|s| s.name.as_str())
            .collect::<Vec<_>>(),
        vec!["inner", "sibling", "root"]
    );
    let root = report.find("root").unwrap();
    assert_eq!(root.parent, None);
    assert_eq!(root.attr("outcome"), Some("ok"));
    let inner = report.find("inner").unwrap();
    assert_eq!(inner.parent, Some(root.id));
    assert_eq!(report.children_of(root.id).len(), 2);
    assert_eq!(report.events.len(), 1);
    assert_eq!(report.events[0].parent, Some(inner.id));
    assert!(root.dur_us >= inner.dur_us);
}

#[test]
fn jsonl_round_trips() {
    let (t, sink) = Tracer::collect();
    {
        let mut sp = t.span("stage:lint \"quoted\"\n");
        sp.attr("outcome", "ok");
        t.event_at("iteration", 42, Some(7), &[("nodes", "120".to_owned())]);
    }
    let text = sink.to_jsonl();
    let parsed = TraceReport::from_jsonl(&text).unwrap();
    let direct = TraceReport::from_records(&sink.records()).unwrap();
    assert_eq!(parsed, direct);
    assert_eq!(parsed.events[0].t_us, 42);
    assert_eq!(parsed.events[0].dur_us, Some(7));
}

#[test]
fn unbalanced_traces_are_rejected() {
    // A begin with no end.
    let begin = Record {
        kind: RecordKind::Begin,
        id: 1,
        parent: None,
        name: "dangling".to_owned(),
        t_us: 0,
        dur_us: None,
        attrs: Vec::new(),
    };
    assert!(TraceReport::from_records(std::slice::from_ref(&begin)).is_err());
    // An end closing out of LIFO order.
    let mk = |kind, id, parent| Record {
        kind,
        id,
        parent,
        name: format!("s{id}"),
        t_us: 0,
        dur_us: Some(0),
        attrs: Vec::new(),
    };
    let records = vec![
        mk(RecordKind::Begin, 1, None),
        mk(RecordKind::Begin, 2, Some(1)),
        mk(RecordKind::End, 1, None),
    ];
    assert!(TraceReport::from_records(&records).is_err());
    // An event under a span that is not open.
    let records = vec![
        mk(RecordKind::Begin, 1, None),
        mk(RecordKind::End, 1, None),
        mk(RecordKind::Event, 3, Some(9)),
    ];
    assert!(TraceReport::from_records(&records).is_err());
}

#[test]
fn malformed_jsonl_is_rejected() {
    assert!(TraceReport::from_jsonl("not json").is_err());
    assert!(TraceReport::from_jsonl("{\"type\":\"begin\"}").is_err());
    assert!(TraceReport::from_jsonl(
        "{\"type\":\"warp\",\"id\":1,\"parent\":null,\"name\":\"x\",\"t_us\":0}"
    )
    .is_err());
    // Trailing garbage after the object.
    assert!(TraceReport::from_jsonl(
        "{\"type\":\"begin\",\"id\":1,\"parent\":null,\"name\":\"x\",\"t_us\":0} tail"
    )
    .is_err());
}

#[test]
fn exports_have_stable_shape() {
    let (t, sink) = Tracer::collect();
    {
        let mut sp = t.span("check");
        sp.attr("gs", "model");
        t.event("mark", &[]);
    }
    let report = TraceReport::from_records(&sink.records()).unwrap();
    let json = report.to_json();
    assert!(json.starts_with("{\"version\":1,\"spans\":["));
    assert!(json.contains("\"name\":\"check\""));
    assert!(json.contains("\"attrs\":{\"gs\":\"model\"}"));
    let chrome = report.to_chrome_json();
    assert!(chrome.starts_with("{\"traceEvents\":["));
    assert!(chrome.contains("\"ph\":\"X\""));
    assert!(chrome.contains("\"ph\":\"i\""));
}

#[test]
fn tracer_clones_share_one_stack() {
    let (t, sink) = Tracer::collect();
    let t2 = t.clone();
    {
        let _outer = t.span("outer");
        let _inner = t2.span("inner");
    }
    let report = TraceReport::from_records(&sink.records()).unwrap();
    let outer = report.find("outer").unwrap();
    assert_eq!(report.find("inner").unwrap().parent, Some(outer.id));
}

#[test]
fn replay_matches_direct_emission_ids_and_structure() {
    // Direct: a parent span with an op span emitted inline.
    let (direct, direct_sink) = Tracer::collect();
    {
        let _stage = direct.span("stage:map");
        {
            let mut op = direct.span("op:q");
            op.attr("outcome", "ok");
            direct.event("iteration", &[("unions", "3".to_owned())]);
        }
    }
    // Replayed: the op span buffered on a sub-tracer, then replayed under
    // the same parent with the outcome attr added coordinator-side.
    let (main, main_sink) = Tracer::collect();
    let (sub, sub_sink) = Tracer::collect();
    {
        let _op = sub.span("op:q");
        sub.event("iteration", &[("unions", "3".to_owned())]);
    }
    {
        let _stage = main.span("stage:map");
        main.replay_records(
            &sub_sink.records(),
            &[("outcome".to_owned(), "ok".to_owned())],
        );
    }
    type Stripped = (RecordKind, u64, Option<u64>, String, Vec<(String, String)>);
    let strip_times = |recs: Vec<Record>| -> Vec<Stripped> {
        recs.into_iter()
            .map(|r| (r.kind, r.id, r.parent, r.name, r.attrs))
            .collect()
    };
    assert_eq!(
        strip_times(direct_sink.records()),
        strip_times(main_sink.records())
    );
    // The replayed stream is still a valid, well-nested trace.
    TraceReport::from_records(&main_sink.records()).unwrap();
}

#[test]
fn replay_into_null_tracer_is_inert() {
    let (sub, sub_sink) = Tracer::collect();
    {
        let _sp = sub.span("op:x");
    }
    Tracer::null().replay_records(&sub_sink.records(), &[]);
}
