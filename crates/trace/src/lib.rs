//! Structured tracing for the ENTANGLE checker pipeline.
//!
//! A refinement check runs five stages (lint → shard → encode/saturate →
//! outputs → certify), and until now the only externally visible evidence
//! was a verdict and a wall clock. This crate is the zero-dependency
//! observability layer the rest of the workspace threads through that
//! pipeline:
//!
//! - [`Tracer`]: a cheaply cloneable handle that opens nested [`SpanGuard`]s
//!   and emits instant events, stamped with microseconds from a monotonic
//!   epoch. The null tracer ([`Tracer::null`], the default) is a true no-op:
//!   no allocation, no clock reads, no sink calls.
//! - [`TraceSink`]: where records go. [`NullSink`] drops them,
//!   [`CollectSink`] buffers them in memory for programmatic inspection,
//!   [`JsonLinesSink`] streams them as one JSON object per line (the
//!   `--trace <file>` format).
//! - [`TraceReport`]: reconstructs the span tree from a record stream,
//!   validates balance (every `begin` closed, strict LIFO nesting), renders
//!   stable-field-order JSON, and exports the Chrome/Perfetto trace-event
//!   format for `chrome://tracing` and [ui.perfetto.dev].
//!
//! The schema is three record kinds (see DESIGN.md for the field tables):
//!
//! ```text
//! {"type":"begin","id":1,"parent":null,"name":"check_refinement","t_us":3}
//! {"type":"event","id":2,"parent":1,"name":"iteration","t_us":40,"dur_us":17,"attrs":{"nodes":"120"}}
//! {"type":"end","id":1,"name":"check_refinement","t_us":961,"dur_us":958,"attrs":{"outcome":"ok"}}
//! ```
//!
//! # Examples
//!
//! ```
//! use entangle_trace::{TraceReport, Tracer};
//!
//! let (tracer, sink) = Tracer::collect();
//! {
//!     let mut outer = tracer.span("stage:lint");
//!     outer.attr("outcome", "ok");
//!     tracer.event("diagnostic", &[("code", "W001".to_owned())]);
//! }
//! let report = TraceReport::from_records(&sink.records()).unwrap();
//! assert_eq!(report.spans.len(), 1);
//! assert_eq!(report.spans[0].name, "stage:lint");
//! assert_eq!(report.events.len(), 1);
//! ```

#![forbid(unsafe_code)]

mod report;
mod sink;

pub use report::{ParsedRecord, TraceError, TraceReport, TraceSpan};
pub use sink::{CollectSink, JsonLinesSink, NullSink, Record, RecordKind, TraceSink};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Escapes a string as a JSON string literal (with surrounding quotes).
///
/// This is the single escaping routine used by every hand-rolled JSON
/// emitter in the workspace (`entangle_lint::json_str` delegates here), so
/// all interchange files agree on one encoding.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

struct TracerInner {
    sink: Arc<dyn TraceSink>,
    epoch: Instant,
    next_id: AtomicU64,
    /// Ids of currently open spans, innermost last. The checker is
    /// single-threaded; the mutex only exists so `Tracer` is `Send + Sync`.
    stack: Mutex<Vec<u64>>,
}

/// A handle for emitting spans and events.
///
/// Cloning is cheap (an `Arc` bump); clones share the sink, the monotonic
/// epoch, and the span stack, so spans opened through different clones nest
/// correctly. The default tracer is the null tracer.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.inner.is_some() {
            "Tracer(enabled)"
        } else {
            "Tracer(null)"
        })
    }
}

impl Tracer {
    /// The no-op tracer: spans and events cost one branch.
    pub fn null() -> Tracer {
        Tracer { inner: None }
    }

    /// A tracer writing to an arbitrary sink.
    pub fn with_sink(sink: Arc<dyn TraceSink>) -> Tracer {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                sink,
                epoch: Instant::now(),
                next_id: AtomicU64::new(1),
                stack: Mutex::new(Vec::new()),
            })),
        }
    }

    /// An in-memory tracer; the returned sink exposes the records.
    pub fn collect() -> (Tracer, Arc<CollectSink>) {
        let sink = Arc::new(CollectSink::default());
        (Tracer::with_sink(sink.clone()), sink)
    }

    /// A tracer streaming JSON-lines records to `w`.
    pub fn jsonl(w: impl std::io::Write + Send + 'static) -> Tracer {
        Tracer::with_sink(Arc::new(JsonLinesSink::new(w)))
    }

    /// `true` unless this is the null tracer.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Microseconds since this tracer's epoch (0 for the null tracer).
    pub fn now_us(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.epoch.elapsed().as_micros() as u64)
    }

    /// Opens a span; it ends (and is emitted) when the guard drops.
    pub fn span(&self, name: &str) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard {
                tracer: None,
                id: 0,
                name: String::new(),
                start_us: 0,
                dur_override_us: None,
                attrs: Vec::new(),
            };
        };
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        let t_us = inner.epoch.elapsed().as_micros() as u64;
        let parent = {
            let mut stack = inner.stack.lock().unwrap();
            let parent = stack.last().copied();
            stack.push(id);
            parent
        };
        inner.sink.record(&Record {
            kind: RecordKind::Begin,
            id,
            parent,
            name: name.to_owned(),
            t_us,
            dur_us: None,
            attrs: Vec::new(),
        });
        SpanGuard {
            tracer: Some(inner.clone()),
            id,
            name: name.to_owned(),
            start_us: t_us,
            dur_override_us: None,
            attrs: Vec::new(),
        }
    }

    /// Emits an instant event under the currently open span.
    pub fn event(&self, name: &str, attrs: &[(&str, String)]) {
        self.event_at(name, self.now_us(), None, attrs);
    }

    /// Replays records captured by a [`Tracer::collect`] sub-tracer into
    /// this tracer, as if the work had run inline just now.
    ///
    /// Ids are re-assigned from this tracer's counter in record order — the
    /// same order direct emission would have allocated them — so a check
    /// whose per-operator spans were buffered on worker threads and replayed
    /// in operator order produces the *same id sequence* as a sequential
    /// check emitting directly. Top-level records (parent `None` in the
    /// sub-tracer) are re-parented onto this tracer's currently open span;
    /// timestamps are shifted by this tracer's current clock so the stream
    /// stays monotone. `extra_attrs` are appended to the first top-level
    /// span's `end` record — the checker adds its coordinator-side outcome
    /// attributes and the `worker` tag there.
    pub fn replay_records(&self, records: &[Record], extra_attrs: &[(String, String)]) {
        let Some(inner) = &self.inner else { return };
        let base_us = inner.epoch.elapsed().as_micros() as u64;
        let ambient = inner.stack.lock().unwrap().last().copied();
        let mut ids: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        let mut first_top: Option<u64> = None;
        for rec in records {
            match rec.kind {
                RecordKind::Begin | RecordKind::Event => {
                    let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
                    ids.insert(rec.id, id);
                    if rec.kind == RecordKind::Begin && rec.parent.is_none() && first_top.is_none()
                    {
                        first_top = Some(rec.id);
                    }
                    let parent = match rec.parent {
                        Some(p) => ids.get(&p).copied(),
                        None => ambient,
                    };
                    inner.sink.record(&Record {
                        kind: rec.kind,
                        id,
                        parent,
                        name: rec.name.clone(),
                        t_us: base_us + rec.t_us,
                        dur_us: rec.dur_us,
                        attrs: rec.attrs.clone(),
                    });
                }
                RecordKind::End => {
                    let id = ids.get(&rec.id).copied().unwrap_or(rec.id);
                    let mut attrs = rec.attrs.clone();
                    if first_top == Some(rec.id) {
                        attrs.extend(extra_attrs.iter().cloned());
                    }
                    inner.sink.record(&Record {
                        kind: RecordKind::End,
                        id,
                        parent: None,
                        name: rec.name.clone(),
                        t_us: base_us + rec.t_us,
                        dur_us: rec.dur_us,
                        attrs,
                    });
                }
            }
        }
    }

    /// Emits an event with an explicit timestamp (and optional duration) —
    /// used to replay telemetry recorded outside the tracer, e.g. the
    /// per-iteration saturation stats the `Runner` collects with its own
    /// clock.
    pub fn event_at(&self, name: &str, t_us: u64, dur_us: Option<u64>, attrs: &[(&str, String)]) {
        let Some(inner) = &self.inner else { return };
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        let parent = inner.stack.lock().unwrap().last().copied();
        inner.sink.record(&Record {
            kind: RecordKind::Event,
            id,
            parent,
            name: name.to_owned(),
            t_us,
            dur_us,
            attrs: attrs
                .iter()
                .map(|(k, v)| ((*k).to_owned(), v.clone()))
                .collect(),
        });
    }
}

/// An open span; ends when dropped. Attributes set with [`SpanGuard::attr`]
/// are emitted on the `end` record.
pub struct SpanGuard {
    tracer: Option<Arc<TracerInner>>,
    id: u64,
    name: String,
    start_us: u64,
    dur_override_us: Option<u64>,
    attrs: Vec<(String, String)>,
}

impl SpanGuard {
    /// Attaches an attribute to the span's `end` record.
    pub fn attr(&mut self, key: &str, value: impl ToString) {
        if self.tracer.is_some() {
            self.attrs.push((key.to_owned(), value.to_string()));
        }
    }

    /// Overrides the span's reported duration (the externally-timed
    /// counterpart of [`Tracer::event_at`]). Used when a span *describes*
    /// work that ran elsewhere — e.g. a saturation run replayed from the
    /// cross-operator memo reports the original run's wall clock, not the
    /// microseconds the replay took.
    pub fn set_elapsed_us(&mut self, dur_us: u64) {
        if self.tracer.is_some() {
            self.dur_override_us = Some(dur_us);
        }
    }

    /// The span id (0 for the null tracer).
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(inner) = self.tracer.take() else {
            return;
        };
        {
            let mut stack = inner.stack.lock().unwrap();
            // Scoped guards close LIFO; pop defensively up to our id so a
            // leaked inner guard cannot poison parentage forever.
            while let Some(top) = stack.pop() {
                if top == self.id {
                    break;
                }
            }
        }
        let t_us = inner.epoch.elapsed().as_micros() as u64;
        inner.sink.record(&Record {
            kind: RecordKind::End,
            id: self.id,
            parent: None,
            name: std::mem::take(&mut self.name),
            t_us,
            dur_us: Some(
                self.dur_override_us
                    .unwrap_or_else(|| t_us.saturating_sub(self.start_us)),
            ),
            attrs: std::mem::take(&mut self.attrs),
        });
    }
}

#[cfg(test)]
mod tests;
