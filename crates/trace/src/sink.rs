//! Trace sinks: where span/event records go.

use std::io::Write;
use std::sync::Mutex;

use crate::json_str;

/// The three record kinds of the JSON-lines schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A span opened.
    Begin,
    /// A span closed (carries `dur_us` and the span's attributes).
    End,
    /// An instant (or externally timed) event under the open span.
    Event,
}

impl RecordKind {
    /// The `type` field value.
    pub fn as_str(&self) -> &'static str {
        match self {
            RecordKind::Begin => "begin",
            RecordKind::End => "end",
            RecordKind::Event => "event",
        }
    }
}

/// One trace record, as handed to a [`TraceSink`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Record kind.
    pub kind: RecordKind,
    /// Span id (`Begin`/`End`) or event id (`Event`); ids are unique per
    /// tracer and never 0.
    pub id: u64,
    /// Enclosing span id (`Begin`/`Event`; `None` at the root and on `End`
    /// records, whose parentage is fixed by their `Begin`).
    pub parent: Option<u64>,
    /// Span or event name (e.g. `stage:saturate`, `iteration`).
    pub name: String,
    /// Microseconds since the tracer epoch (start time for `Begin`/`Event`,
    /// end time for `End`).
    pub t_us: u64,
    /// Duration in microseconds (`End` always; `Event` when externally
    /// timed).
    pub dur_us: Option<u64>,
    /// Key/value attributes (span attributes ride on the `End` record).
    pub attrs: Vec<(String, String)>,
}

impl Record {
    /// Renders the record as one JSON-lines line (no trailing newline),
    /// with stable field order:
    /// `type, id, parent, name, t_us, dur_us, attrs`.
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"type\":\"{}\",\"id\":{}", self.kind.as_str(), self.id);
        if self.kind != RecordKind::End {
            match self.parent {
                Some(p) => out.push_str(&format!(",\"parent\":{p}")),
                None => out.push_str(",\"parent\":null"),
            }
        }
        out.push_str(&format!(",\"name\":{}", json_str(&self.name)));
        out.push_str(&format!(",\"t_us\":{}", self.t_us));
        if let Some(d) = self.dur_us {
            out.push_str(&format!(",\"dur_us\":{d}"));
        }
        if !self.attrs.is_empty() {
            out.push_str(",\"attrs\":{");
            for (i, (k, v)) in self.attrs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{}:{}", json_str(k), json_str(v)));
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

/// A consumer of trace records. Implementations must tolerate being called
/// from a shared (`&self`) context.
pub trait TraceSink: Send + Sync {
    /// Consumes one record.
    fn record(&self, rec: &Record);
}

/// Drops every record. The explicit form of the default no-op; prefer
/// [`crate::Tracer::null`], which skips record construction entirely.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&self, _rec: &Record) {}
}

/// Buffers records in memory, in emission order.
#[derive(Default)]
pub struct CollectSink {
    records: Mutex<Vec<Record>>,
}

impl CollectSink {
    /// A snapshot of the records collected so far.
    pub fn records(&self) -> Vec<Record> {
        self.records.lock().unwrap().clone()
    }

    /// Renders the collected records as a JSON-lines document — byte
    /// identical to what a [`JsonLinesSink`] fed the same records writes.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for rec in self.records.lock().unwrap().iter() {
            out.push_str(&rec.to_json());
            out.push('\n');
        }
        out
    }
}

impl TraceSink for CollectSink {
    fn record(&self, rec: &Record) {
        self.records.lock().unwrap().push(rec.clone());
    }
}

/// Streams records as JSON lines to a writer; flushes on drop.
pub struct JsonLinesSink {
    w: Mutex<Box<dyn Write + Send>>,
}

impl JsonLinesSink {
    /// Wraps a writer.
    pub fn new(w: impl Write + Send + 'static) -> JsonLinesSink {
        JsonLinesSink {
            w: Mutex::new(Box::new(w)),
        }
    }
}

impl TraceSink for JsonLinesSink {
    fn record(&self, rec: &Record) {
        // Tracing must never change the traced command's outcome, so write
        // errors (a full disk, a closed pipe) are swallowed.
        let mut w = self.w.lock().unwrap();
        let _ = writeln!(w, "{}", rec.to_json());
    }
}

impl Drop for JsonLinesSink {
    fn drop(&mut self) {
        if let Ok(mut w) = self.w.lock() {
            let _ = w.flush();
        }
    }
}
