//! The `entangle` command-line tool.
//!
//! Checks model refinement on computation graphs serialized in the JSON
//! interchange format (the §5 bridge through which any front end — a
//! TorchDynamo exporter, an HLO translator — can reach the checker):
//!
//! ```text
//! entangle check   <gs.json> <gd.json> --map 'A=(concat A1 A2 1)' [--map ...]
//! entangle check   <gs.json> <gd.json> --maps relations.txt
//! entangle certify <gs.json> <gd.json> --maps relations.txt --emit cert.json
//! entangle certify <gs.json> <gd.json> --check cert.json
//! entangle expect  <gs.json> <gd.json> --maps relations.txt --fs F --fd '(concat F1 F2 0)'
//! entangle lint    <graph.json>
//! entangle iso     <graph.json>
//! entangle info    <graph.json>
//! entangle trace   gpt-tp2
//! entangle --trace out.jsonl check <gs.json> <gd.json> --maps relations.txt
//! ```
//!
//! A maps file holds one `gs_tensor = s-expression` mapping per line
//! (`#`-prefixed lines are comments). Exit code 0 = verified, 1 = bug
//! found, 2 = usage/input error, 3 = static lint errors, 4 = certificate
//! rejected by the trusted kernel, 5 = rule-corpus analysis errors,
//! 6 = template-analysis errors.
//!
//! The global `--trace FILE` flag streams a JSON-lines structured trace of
//! any invocation (spans for every pipeline stage, saturation telemetry
//! events) to `FILE`; it never changes output on stdout or the exit code.
//! `entangle trace` runs a workload under an in-memory collector and prints
//! the timing profile: per-stage wall clock, the hottest lemmas by
//! cumulative apply time, and the e-graph growth curve.

#![forbid(unsafe_code)]

use std::fmt;
use std::fs;
use std::time::{Duration, Instant};

use entangle::{check_expectation, check_refinement, CheckOptions, ExpectationError, Relation};
use entangle_ir::Graph;
use entangle_trace::{TraceReport, Tracer};

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Refinement check between two graph files.
    Check {
        /// Path to the sequential graph JSON.
        gs: String,
        /// Path to the distributed graph JSON.
        gd: String,
        /// `name=expr` input mappings.
        maps: Vec<(String, String)>,
    },
    /// Proof-carrying refinement check: run the certified check and emit
    /// the kernel-accepted certificate, or re-check a saved one.
    Certify {
        /// Path to the sequential graph JSON.
        gs: String,
        /// Path to the distributed graph JSON.
        gd: String,
        /// `name=expr` input mappings (generation mode).
        maps: Vec<(String, String)>,
        /// Write the certificate JSON to this file after verification.
        emit: Option<String>,
        /// Re-check a saved certificate file instead of generating one.
        check: Option<String>,
        /// Print the certificate JSON to stdout.
        json: bool,
    },
    /// §4.4 expectation check.
    Expect {
        /// Path to the sequential graph JSON.
        gs: String,
        /// Path to the distributed graph JSON.
        gd: String,
        /// `name=expr` input mappings.
        maps: Vec<(String, String)>,
        /// `f_s` combiner expression over `G_s` tensor names.
        fs: String,
        /// `f_d` combiner expression over `G_d` tensor names.
        fd: String,
    },
    /// Run the static lint passes over one graph file.
    Lint {
        /// Path to the graph JSON.
        graph: String,
        /// Emit the report as JSON.
        json: bool,
    },
    /// Run the static rule-corpus analysis (`entangle-rules`) over the
    /// full lemma registry.
    Rules {
        /// Emit the analysis as JSON.
        json: bool,
    },
    /// Run the sharding-propagation analysis over one graph file.
    Shard {
        /// Path to the distributed graph JSON.
        gd: String,
        /// Optional sequential graph JSON (enables cross-rank checks and
        /// relation hints).
        gs: Option<String>,
        /// `name=expr` input mappings (paired mode).
        maps: Vec<(String, String)>,
        /// Emit the analysis as JSON.
        json: bool,
    },
    /// Run the static graph-template analysis over one graph file.
    Iso {
        /// Path to the graph JSON.
        graph: String,
        /// Neighborhood radius for the canonical forms (`None` = default).
        radius: Option<usize>,
        /// Emit the analysis as JSON.
        json: bool,
    },
    /// Print a summary of one graph file.
    Info {
        /// Path to the graph JSON.
        graph: String,
        /// Emit Graphviz DOT instead of the summary.
        dot: bool,
    },
    /// Run a workload under full instrumentation and print its timing
    /// profile, or validate a previously captured trace file.
    Trace {
        /// Named zoo workload (`gpt-tp2`, `moe-tpsp2`, …), normalized to
        /// the `examples/graphs` file stems.
        workload: Option<String>,
        /// Path to the sequential graph JSON (file mode).
        gs: Option<String>,
        /// Path to the distributed graph JSON (file mode).
        gd: Option<String>,
        /// `name=expr` input mappings (file mode).
        maps: Vec<(String, String)>,
        /// How many rules to show in the hot-rule table.
        top: usize,
        /// Print the structured trace report as JSON instead of the tables.
        json: bool,
        /// Write a Chrome/Perfetto trace-event file.
        perfetto: Option<String>,
        /// Validate an existing JSON-lines trace file instead of running.
        check: Option<String>,
    },
    /// Print usage.
    Help,
}

/// CLI-level errors (usage and I/O).
#[derive(Debug)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

/// The usage text.
pub const USAGE: &str = "\
entangle — static refinement checking for distributed ML models

USAGE:
  entangle check   <gs.json> <gd.json> (--map 'name=(expr)')* [--maps FILE]
  entangle certify <gs.json> <gd.json> [--map ...|--maps FILE]
                   [--emit FILE] [--json]
  entangle certify <gs.json> <gd.json> --check FILE
  entangle expect  <gs.json> <gd.json> [--map ...|--maps FILE] --fs EXPR --fd EXPR
  entangle lint    <graph.json> [--json]
  entangle rules   [--json]
  entangle shard   <gd.json> [--gs <gs.json>] [--map ...|--maps FILE] [--json]
  entangle iso     <graph.json> [--radius N] [--json]
  entangle info    <graph.json> [--dot]
  entangle trace   <workload> [--top N] [--json] [--perfetto FILE]
  entangle trace   <gs.json> <gd.json> [--map ...|--maps FILE]
                   [--top N] [--json] [--perfetto FILE]
  entangle trace   --check FILE [--json] [--perfetto FILE]
  entangle help

GLOBAL FLAGS (any subcommand):
  --trace FILE   stream a JSON-lines structured trace of the invocation to
                 FILE; never changes stdout output or the exit code
  --jobs N       worker threads for the refinement checker's dependency-
                 aware scheduler (default: detected cores). Results are
                 identical for any N; N=1 is the sequential engine

Mappings relate each G_s input tensor to an s-expression over G_d tensor
names, e.g.  --map 'A=(concat A1 A2 1)'. A --maps file holds one mapping
per line; '#' starts a comment.

lint runs the static diagnostics passes (well-formedness, distribution
consistency) over one graph and prints every finding; check runs them on
both graphs before any saturation (see E###/W### codes in the docs).

rules runs the static rule-corpus analysis (RL## codes) over the full
lemma registry: growth classification (simplifying / size-preserving /
generative), the rule-interaction graph with its generative cycles, the
backoff throttle set the checker derives from them, duplicate/subsumed/
dead rules, and abstract shape/dtype soundness of every pattern rule.

shard runs the abstract sharding-propagation analysis (SH## codes): with
--gs and mappings it seeds shard layouts from the input relation, checks
cross-rank consistency, and prints the relation hints it can prove;
without, it reports the per-tensor layout structure of the graph alone.

iso runs the static graph-template analysis (IS## codes): each operator's
producer-side neighborhood is canonicalized into a bounded-depth
fingerprint (leaf names dropped, slice bounds parameterized) and the graph
is partitioned into repeated template classes — the partition the checker
reuses to solve one representative per class. Findings cover fingerprint
collisions, near-miss templates (one instance out of step with a repeated
class), and non-bijective parameter-leaf alignment.

certify runs the proof-carrying check: the saturation engine's derivation
is extracted as a rewrite certificate and re-validated by the independent
trusted kernel before success is reported. --emit/--json export the
certificate; --check re-validates a previously exported certificate file
against the graphs without rerunning saturation.

trace runs the full certified pipeline over a named zoo workload (gpt-tp2,
gpt-tpsp2, llama3-tp2, llama3-tpsp2, qwen2-tp2, qwen2-tpsp2, moe-tpsp2) or
a graph pair, and prints the per-stage timing profile, the hottest lemmas
by cumulative apply time, the e-graph growth curve, and the saturation
stop-reason tally. --perfetto exports a chrome://tracing-compatible
trace-event file; --check parses a JSON-lines trace captured earlier with
--trace and verifies every span balances.

EXIT CODES:  0 verified   1 refinement/expectation failed   2 usage error
             3 static lint errors   4 certificate rejected
             5 rule-corpus analysis errors
             6 template-analysis errors";

/// Parses argv (without the program name).
///
/// # Errors
///
/// Returns a usage error for unknown subcommands, missing operands or
/// malformed `--map` arguments.
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter();
    let sub = it.next().map(String::as_str).unwrap_or("help");
    match sub {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "lint" => {
            let graph = it
                .next()
                .ok_or_else(|| CliError("lint: missing <graph.json>".into()))?
                .clone();
            let json = match it.next().map(String::as_str) {
                None => false,
                Some("--json") => true,
                Some(other) => return Err(CliError(format!("lint: unknown flag {other}"))),
            };
            Ok(Command::Lint { graph, json })
        }
        "rules" => {
            let json = match it.next().map(String::as_str) {
                None => false,
                Some("--json") => true,
                Some(other) => return Err(CliError(format!("rules: unknown flag {other}"))),
            };
            Ok(Command::Rules { json })
        }
        "shard" => {
            let gd = it
                .next()
                .ok_or_else(|| CliError("shard: missing <gd.json>".into()))?
                .clone();
            let mut gs = None;
            let mut maps = Vec::new();
            let mut json = false;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--gs" => {
                        gs = Some(
                            it.next()
                                .ok_or_else(|| CliError("--gs needs a file path".into()))?
                                .clone(),
                        );
                    }
                    "--map" => {
                        let spec = it
                            .next()
                            .ok_or_else(|| CliError("--map needs name=expr".into()))?;
                        maps.push(parse_map_spec(spec)?);
                    }
                    "--maps" => {
                        let path = it
                            .next()
                            .ok_or_else(|| CliError("--maps needs a file path".into()))?;
                        let text = fs::read_to_string(path)
                            .map_err(|e| CliError(format!("cannot read {path}: {e}")))?;
                        maps.extend(parse_maps_file(&text)?);
                    }
                    "--json" => json = true,
                    other => return Err(CliError(format!("shard: unknown flag {other}"))),
                }
            }
            if gs.is_none() && !maps.is_empty() {
                return Err(CliError("shard: --map/--maps need --gs".into()));
            }
            Ok(Command::Shard { gd, gs, maps, json })
        }
        "iso" => {
            let graph = it
                .next()
                .ok_or_else(|| CliError("iso: missing <graph.json>".into()))?
                .clone();
            let mut radius = None;
            let mut json = false;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--radius" => {
                        let n = it
                            .next()
                            .ok_or_else(|| CliError("--radius needs a number".into()))?;
                        radius = Some(
                            n.parse()
                                .map_err(|_| CliError(format!("--radius: not a number: {n:?}")))?,
                        );
                    }
                    "--json" => json = true,
                    other => return Err(CliError(format!("iso: unknown flag {other}"))),
                }
            }
            Ok(Command::Iso {
                graph,
                radius,
                json,
            })
        }
        "info" => {
            let graph = it
                .next()
                .ok_or_else(|| CliError("info: missing <graph.json>".into()))?
                .clone();
            let dot = match it.next().map(String::as_str) {
                None => false,
                Some("--dot") => true,
                Some(other) => return Err(CliError(format!("info: unknown flag {other}"))),
            };
            Ok(Command::Info { graph, dot })
        }
        "certify" => {
            let gs = it
                .next()
                .ok_or_else(|| CliError("certify: missing <gs.json>".into()))?
                .clone();
            let gd = it
                .next()
                .ok_or_else(|| CliError("certify: missing <gd.json>".into()))?
                .clone();
            let mut maps = Vec::new();
            let mut emit = None;
            let mut check = None;
            let mut json = false;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--map" => {
                        let spec = it
                            .next()
                            .ok_or_else(|| CliError("--map needs name=expr".into()))?;
                        maps.push(parse_map_spec(spec)?);
                    }
                    "--maps" => {
                        let path = it
                            .next()
                            .ok_or_else(|| CliError("--maps needs a file path".into()))?;
                        let text = fs::read_to_string(path)
                            .map_err(|e| CliError(format!("cannot read {path}: {e}")))?;
                        maps.extend(parse_maps_file(&text)?);
                    }
                    "--emit" => {
                        emit = Some(
                            it.next()
                                .ok_or_else(|| CliError("--emit needs a file path".into()))?
                                .clone(),
                        );
                    }
                    "--check" => {
                        check = Some(
                            it.next()
                                .ok_or_else(|| CliError("--check needs a file path".into()))?
                                .clone(),
                        );
                    }
                    "--json" => json = true,
                    other => return Err(CliError(format!("certify: unknown flag {other}"))),
                }
            }
            if check.is_some() && (emit.is_some() || !maps.is_empty()) {
                return Err(CliError(
                    "certify: --check re-validates a saved certificate; it takes no \
                     --map/--maps/--emit"
                        .into(),
                ));
            }
            Ok(Command::Certify {
                gs,
                gd,
                maps,
                emit,
                check,
                json,
            })
        }
        "trace" => {
            let mut operands: Vec<String> = Vec::new();
            let mut maps = Vec::new();
            let mut top = 10usize;
            let mut json = false;
            let mut perfetto = None;
            let mut check = None;
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--map" => {
                        let spec = it
                            .next()
                            .ok_or_else(|| CliError("--map needs name=expr".into()))?;
                        maps.push(parse_map_spec(spec)?);
                    }
                    "--maps" => {
                        let path = it
                            .next()
                            .ok_or_else(|| CliError("--maps needs a file path".into()))?;
                        let text = fs::read_to_string(path)
                            .map_err(|e| CliError(format!("cannot read {path}: {e}")))?;
                        maps.extend(parse_maps_file(&text)?);
                    }
                    "--top" => {
                        let n = it
                            .next()
                            .ok_or_else(|| CliError("--top needs a number".into()))?;
                        top = n
                            .parse()
                            .map_err(|_| CliError(format!("--top: not a number: {n:?}")))?;
                    }
                    "--json" => json = true,
                    "--perfetto" => {
                        perfetto = Some(
                            it.next()
                                .ok_or_else(|| CliError("--perfetto needs a file path".into()))?
                                .clone(),
                        );
                    }
                    "--check" => {
                        check = Some(
                            it.next()
                                .ok_or_else(|| CliError("--check needs a file path".into()))?
                                .clone(),
                        );
                    }
                    flag if flag.starts_with("--") => {
                        return Err(CliError(format!("trace: unknown flag {flag}")))
                    }
                    _ => operands.push(arg.clone()),
                }
            }
            if check.is_some() {
                if !operands.is_empty() || !maps.is_empty() {
                    return Err(CliError(
                        "trace: --check validates a saved trace file; it takes no \
                         workload or --map/--maps"
                            .into(),
                    ));
                }
                return Ok(Command::Trace {
                    workload: None,
                    gs: None,
                    gd: None,
                    maps,
                    top,
                    json,
                    perfetto,
                    check,
                });
            }
            let (workload, gs, gd) = match operands.len() {
                1 => (Some(operands[0].replace('-', "_")), None, None),
                2 => (None, Some(operands[0].clone()), Some(operands[1].clone())),
                0 => {
                    return Err(CliError(
                        "trace: missing <workload> or <gs.json> <gd.json> (or --check FILE)".into(),
                    ))
                }
                _ => return Err(CliError("trace: too many operands".into())),
            };
            if workload.is_some() && !maps.is_empty() {
                return Err(CliError(
                    "trace: named workloads carry their own input maps; \
                     --map/--maps need the <gs.json> <gd.json> form"
                        .into(),
                ));
            }
            Ok(Command::Trace {
                workload,
                gs,
                gd,
                maps,
                top,
                json,
                perfetto,
                check,
            })
        }
        "check" | "expect" => {
            let gs = it
                .next()
                .ok_or_else(|| CliError(format!("{sub}: missing <gs.json>")))?
                .clone();
            let gd = it
                .next()
                .ok_or_else(|| CliError(format!("{sub}: missing <gd.json>")))?
                .clone();
            let mut maps = Vec::new();
            let mut fs = None;
            let mut fd = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--map" => {
                        let spec = it
                            .next()
                            .ok_or_else(|| CliError("--map needs name=expr".into()))?;
                        maps.push(parse_map_spec(spec)?);
                    }
                    "--maps" => {
                        let path = it
                            .next()
                            .ok_or_else(|| CliError("--maps needs a file path".into()))?;
                        let text = fs::read_to_string(path)
                            .map_err(|e| CliError(format!("cannot read {path}: {e}")))?;
                        maps.extend(parse_maps_file(&text)?);
                    }
                    "--fs" => {
                        fs = Some(
                            it.next()
                                .ok_or_else(|| CliError("--fs needs an expression".into()))?
                                .clone(),
                        );
                    }
                    "--fd" => {
                        fd = Some(
                            it.next()
                                .ok_or_else(|| CliError("--fd needs an expression".into()))?
                                .clone(),
                        );
                    }
                    other => return Err(CliError(format!("unknown flag {other}"))),
                }
            }
            if sub == "check" {
                Ok(Command::Check { gs, gd, maps })
            } else {
                Ok(Command::Expect {
                    gs,
                    gd,
                    maps,
                    fs: fs.ok_or_else(|| CliError("expect: missing --fs".into()))?,
                    fd: fd.ok_or_else(|| CliError("expect: missing --fd".into()))?,
                })
            }
        }
        other => Err(CliError(format!("unknown subcommand {other}"))),
    }
}

/// Global flags valid in any position, for any subcommand, extracted by
/// [`parse_invocation`] before subcommand parsing.
#[derive(Debug, Clone, Default)]
pub struct GlobalFlags {
    /// `--trace FILE`: stream a JSON-lines structured trace to FILE.
    pub trace: Option<String>,
    /// `--jobs N`: worker-thread count for the refinement checker's
    /// dependency-aware scheduler. `None` defers to the library default
    /// (the detected core count); `0` is normalized to 1 by the checker.
    pub jobs: Option<usize>,
}

/// Parses a full argv (without the program name), extracting the global
/// flags (`--trace FILE`, `--jobs N`) — valid in any position, for any
/// subcommand — before subcommand parsing.
///
/// # Errors
///
/// Returns a usage error when a global flag is missing or has a malformed
/// operand, or the remaining arguments do not parse.
pub fn parse_invocation(args: &[String]) -> Result<(Command, GlobalFlags), CliError> {
    let mut rest = Vec::with_capacity(args.len());
    let mut flags = GlobalFlags::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--trace" {
            let path = it
                .next()
                .ok_or_else(|| CliError("--trace needs a file path".into()))?;
            flags.trace = Some(path.clone());
        } else if a == "--jobs" {
            let n = it
                .next()
                .ok_or_else(|| CliError("--jobs needs a thread count".into()))?;
            let n: usize = n
                .parse()
                .map_err(|_| CliError(format!("--jobs: not a thread count: {n:?}")))?;
            flags.jobs = Some(n);
        } else {
            rest.push(a.clone());
        }
    }
    Ok((parse_args(&rest)?, flags))
}

/// Parses one `name=expr` mapping.
///
/// # Errors
///
/// Returns a usage error when the `=` separator is missing.
pub fn parse_map_spec(spec: &str) -> Result<(String, String), CliError> {
    let (name, expr) = spec
        .split_once('=')
        .ok_or_else(|| CliError(format!("malformed mapping {spec:?}: expected name=expr")))?;
    Ok((name.trim().to_owned(), expr.trim().to_owned()))
}

/// Parses a maps file (one `name = expr` per line, `#` comments).
///
/// # Errors
///
/// Returns a usage error for malformed lines.
pub fn parse_maps_file(text: &str) -> Result<Vec<(String, String)>, CliError> {
    let mut out = Vec::new();
    for (no, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(parse_map_spec(line).map_err(|e| CliError(format!("line {}: {e}", no + 1)))?);
    }
    Ok(out)
}

fn load_graph(path: &str) -> Result<Graph, CliError> {
    let text =
        fs::read_to_string(path).map_err(|e| CliError(format!("cannot read {path}: {e}")))?;
    Graph::from_json(&text).map_err(|e| CliError(format!("{path}: {e}")))
}

/// Loads a graph for linting: decode-level checks only, so graphs the full
/// validator would reject (stale shapes, non-topological order) still load
/// and get proper diagnostics instead of a parse error.
fn load_graph_unvalidated(path: &str) -> Result<Graph, CliError> {
    let text =
        fs::read_to_string(path).map_err(|e| CliError(format!("cannot read {path}: {e}")))?;
    Graph::from_json_unvalidated(&text).map_err(|e| CliError(format!("{path}: {e}")))
}

fn build_relation(gs: &Graph, gd: &Graph, maps: &[(String, String)]) -> Result<Relation, CliError> {
    let mut b = Relation::builder(gs, gd);
    for (name, expr) in maps {
        b.map(name, expr)
            .map_err(|e| CliError(format!("mapping {name}: {e}")))?;
    }
    Ok(b.build())
}

/// Runs a parsed command, printing to stdout; returns the process exit code.
pub fn run(cmd: &Command) -> i32 {
    run_traced(cmd, None)
}

/// Runs a parsed command under the global `--trace FILE` flag: the
/// invocation streams a JSON-lines structured trace to `trace_path` as it
/// executes. Tracing never changes stdout output or the exit code.
pub fn run_traced(cmd: &Command, trace_path: Option<&str>) -> i32 {
    run_with(
        cmd,
        &GlobalFlags {
            trace: trace_path.map(str::to_owned),
            jobs: None,
        },
    )
}

/// Runs a parsed command under the full set of global flags (`--trace`,
/// `--jobs`). Neither flag changes stdout verdict lines or the exit code;
/// `--jobs` only selects the checker's worker-thread count.
pub fn run_with(cmd: &Command, flags: &GlobalFlags) -> i32 {
    let trace_path = flags.trace.as_deref();
    if matches!(cmd, Command::Trace { .. }) {
        // The trace subcommand collects in memory — it analyzes its own
        // spans after the run — and honors --trace itself.
        return match run_trace(cmd, trace_path, flags.jobs) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!("\n{USAGE}");
                2
            }
        };
    }
    let tracer = match trace_path {
        None => Tracer::null(),
        Some(path) => match fs::File::create(path) {
            Ok(f) => Tracer::jsonl(std::io::BufWriter::new(f)),
            Err(e) => {
                eprintln!("error: cannot create trace file {path}: {e}");
                return 2;
            }
        },
    };
    let mut root = tracer.span(&format!("cli:{}", command_name(cmd)));
    let code = match run_inner(cmd, &tracer, flags.jobs) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("\n{USAGE}");
            2
        }
    };
    root.attr("exit", code);
    drop(root);
    code
}

/// The default [`CheckOptions`] for a CLI invocation: tracing into the
/// invocation's tracer, worker count from `--jobs` when given.
fn check_options(tracer: &Tracer, jobs: Option<usize>) -> CheckOptions {
    let mut opts = CheckOptions {
        trace: tracer.clone(),
        ..CheckOptions::default()
    };
    if let Some(j) = jobs {
        opts.jobs = j;
    }
    opts
}

/// One human-readable line summarizing the checker's scheduler and
/// cross-operator cache behavior, printed after check/certify verdicts.
fn par_summary(par: &entangle::ParStats) -> String {
    let cache = if par.cache_enabled {
        format!(
            "cache {} hits / {} misses ({:.0}% hit rate)",
            par.cache_hits,
            par.cache_misses,
            par.hit_rate() * 100.0
        )
    } else {
        "cache off".to_owned()
    };
    let templates = if par.templates_enabled && par.template_classes > 0 {
        format!(
            "; templates {} classes, {} hits ({} kernel-instantiated, {} fallbacks)",
            par.template_classes,
            par.template_hits,
            par.template_instantiated,
            par.template_fallbacks
        )
    } else {
        String::new()
    };
    format!(
        "parallel : {} jobs on {} cores; {}{}",
        par.jobs, par.cores, cache, templates
    )
}

fn command_name(cmd: &Command) -> &'static str {
    match cmd {
        Command::Check { .. } => "check",
        Command::Certify { .. } => "certify",
        Command::Expect { .. } => "expect",
        Command::Lint { .. } => "lint",
        Command::Rules { .. } => "rules",
        Command::Shard { .. } => "shard",
        Command::Iso { .. } => "iso",
        Command::Info { .. } => "info",
        Command::Trace { .. } => "trace",
        Command::Help => "help",
    }
}

fn ms(d: Duration) -> String {
    format!("{:.1}ms", d.as_secs_f64() * 1e3)
}

fn run_inner(cmd: &Command, tracer: &Tracer, jobs: Option<usize>) -> Result<i32, CliError> {
    match cmd {
        Command::Help => {
            println!("{USAGE}");
            Ok(0)
        }
        Command::Lint { graph, json } => {
            let g = {
                let mut sp = tracer.span("load");
                sp.attr("path", graph);
                load_graph_unvalidated(graph)?
            };
            let report = {
                let mut sp = tracer.span("stage:lint");
                let report = entangle_lint::lint_graph(&g);
                sp.attr("errors", report.error_count());
                sp.attr("warnings", report.warning_count());
                report
            };
            if *json {
                println!("{}", report.to_json(Some(&g)));
                return Ok(if report.is_clean() { 0 } else { 3 });
            }
            if !report.diagnostics.is_empty() {
                println!("{}", report.render(Some(&g)));
            }
            println!(
                "{}: {} ({} operators, {} tensors)",
                g.name(),
                report.summary(),
                g.num_nodes(),
                g.num_tensors(),
            );
            Ok(if report.is_clean() { 0 } else { 3 })
        }
        Command::Rules { json } => {
            let rewrites = entangle_lemmas::rewrites_of(&entangle_lemmas::registry());
            let analysis = {
                let mut sp = tracer.span("stage:rules");
                let analysis = entangle_rules::analyze(&rewrites);
                sp.attr("rules", analysis.classes.len());
                sp.attr("cycles", analysis.cycles.len());
                sp.attr("throttled", analysis.throttled.len());
                sp.attr("errors", analysis.report.error_count());
                sp.attr("warnings", analysis.report.warning_count());
                analysis
            };
            if *json {
                println!("{}", analysis.to_json());
            } else {
                print!("{}", analysis.render());
                println!();
            }
            Ok(if analysis.report.is_clean() { 0 } else { 5 })
        }
        Command::Shard { gd, gs, maps, json } => {
            let gd = {
                let mut sp = tracer.span("load");
                sp.attr("path", gd);
                load_graph(gd)?
            };
            let analysis = {
                let mut sp = tracer.span("stage:shard");
                let analysis = match gs {
                    None => entangle_shard::analyze_graph(&gd),
                    Some(gs) => {
                        let gs = load_graph(gs)?;
                        let mut parsed = Vec::with_capacity(maps.len());
                        for (name, expr) in maps {
                            let e = expr
                                .parse()
                                .map_err(|e| CliError(format!("mapping {name}: {e}")))?;
                            parsed.push((name.clone(), e));
                        }
                        entangle_shard::analyze_pair(&gs, &gd, &parsed, &[])
                    }
                };
                sp.attr(
                    "outcome",
                    if analysis.is_clean() {
                        "ok"
                    } else {
                        "violation"
                    },
                );
                sp.attr("hinted_tensors", analysis.hints.len());
                analysis
            };
            if *json {
                println!("{}", analysis.to_json(&gd));
                return Ok(if analysis.is_clean() { 0 } else { 3 });
            }
            println!("layouts:");
            print!("{}", analysis.describe(&gd));
            if !analysis.report.diagnostics.is_empty() {
                println!("{}", analysis.report.render(Some(&gd)));
            }
            if !analysis.hints.is_empty() {
                println!("proven relation hints:");
                for h in &analysis.hints {
                    println!("  {} = {}", h.gs_tensor, h.expr);
                }
            }
            println!("{}: {}", gd.name(), analysis.summary());
            Ok(if analysis.is_clean() { 0 } else { 3 })
        }
        Command::Iso {
            graph,
            radius,
            json,
        } => {
            let g = {
                let mut sp = tracer.span("load");
                sp.attr("path", graph);
                load_graph(graph)?
            };
            let analysis = {
                let mut sp = tracer.span("stage:iso");
                let analysis = match radius {
                    Some(r) => entangle_iso::analyze_with(&g, *r),
                    None => entangle_iso::analyze(&g),
                };
                sp.attr("classes", analysis.class_count());
                sp.attr("covered", analysis.covered());
                sp.attr("errors", analysis.report.error_count());
                sp.attr("warnings", analysis.report.warning_count());
                analysis
            };
            if *json {
                println!("{}", analysis.to_json(&g));
                return Ok(if analysis.report.is_clean() { 0 } else { 6 });
            }
            if !analysis.classes.is_empty() {
                println!("template classes (radius {}):", analysis.radius);
                for c in &analysis.classes {
                    println!(
                        "  #{} {:016x} {} ×{}  (representative {})",
                        c.id,
                        c.fingerprint,
                        c.op,
                        c.members.len(),
                        g.nodes()[c.representative()].name
                    );
                }
            }
            if !analysis.report.diagnostics.is_empty() {
                println!("{}", analysis.report.render(Some(&g)));
            }
            println!("{}: {}", g.name(), analysis.summary());
            Ok(if analysis.report.is_clean() { 0 } else { 6 })
        }
        Command::Info { graph, dot } => {
            let t0 = Instant::now();
            let g = {
                let mut sp = tracer.span("load");
                sp.attr("path", graph);
                load_graph(graph)?
            };
            let t_load = t0.elapsed();
            if *dot {
                print!("{}", g.to_dot());
                return Ok(0);
            }
            println!("graph   : {}", g.name());
            println!("operators: {}", g.num_nodes());
            println!("tensors  : {}", g.num_tensors());
            println!(
                "inputs   : {}",
                g.inputs()
                    .iter()
                    .map(|&t| format!("{} {}", g.tensor(t).name, g.tensor(t).shape))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            println!(
                "outputs  : {}",
                g.outputs()
                    .iter()
                    .map(|&t| format!("{} {}", g.tensor(t).name, g.tensor(t).shape))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            let t1 = Instant::now();
            let lint = {
                let _sp = tracer.span("stage:lint");
                entangle_lint::lint_graph(&g)
            };
            let t_lint = t1.elapsed();
            let t2 = Instant::now();
            let shard = {
                let _sp = tracer.span("stage:shard");
                entangle_shard::analyze_graph(&g)
            };
            let t_shard = t2.elapsed();
            let t3 = Instant::now();
            let iso = {
                let _sp = tracer.span("stage:iso");
                entangle_iso::analyze(&g)
            };
            let t_iso = t3.elapsed();
            println!("lint     : {}", lint.summary());
            println!("shard    : {}", shard.summary());
            println!("templates: {}", iso.summary());
            println!(
                "corpus   : {} lemmas registered (see `entangle rules`)",
                entangle_lemmas::registry().len()
            );
            println!(
                "parallel : {} cores detected, checker runs {} jobs by default",
                entangle_par::available_jobs(),
                jobs.unwrap_or_else(entangle_par::available_jobs).max(1)
            );
            println!(
                "timings  : load {}, lint {}, shard {}, iso {} (total {})",
                ms(t_load),
                ms(t_lint),
                ms(t_shard),
                ms(t_iso),
                ms(t_load + t_lint + t_shard + t_iso)
            );
            Ok(0)
        }
        Command::Check { gs, gd, maps } => {
            let gs = load_graph(gs)?;
            let gd = load_graph(gd)?;
            let ri = build_relation(&gs, &gd, maps)?;
            let opts = check_options(tracer, jobs);
            match check_refinement(&gs, &gd, &ri, &opts) {
                Ok(outcome) => {
                    println!("Refinement verification succeeded for {}.", gd.name());
                    println!("{}", par_summary(&outcome.par));
                    println!("\nOutput relation:");
                    print!("{}", outcome.output_relation.display(&gs));
                    Ok(0)
                }
                Err(e @ entangle::RefinementError::Lint { .. }) => {
                    println!("{e}");
                    Ok(3)
                }
                Err(e @ entangle::RefinementError::CertRejected { .. }) => {
                    println!("Certificate REJECTED:\n{e}");
                    Ok(4)
                }
                Err(e) => {
                    println!("Refinement FAILED:\n{e}");
                    Ok(1)
                }
            }
        }
        Command::Certify {
            gs,
            gd,
            maps,
            emit,
            check,
            json,
        } => {
            let gs = load_graph(gs)?;
            let gd = load_graph(gd)?;

            // Re-check mode: validate a saved certificate with the trusted
            // kernel alone — no relation building, no saturation.
            if let Some(path) = check {
                let text = fs::read_to_string(path)
                    .map_err(|e| CliError(format!("cannot read {path}: {e}")))?;
                let cert = match entangle_cert::from_json(&text) {
                    Ok(cert) => cert,
                    Err(e) => {
                        println!("Certificate REJECTED:\n{e}");
                        return Ok(4);
                    }
                };
                let lemmas = entangle_lemmas::rewrites_of(&entangle_lemmas::registry());
                let mut sp = tracer.span("stage:certify");
                sp.attr("mappings", cert.mappings.len());
                sp.attr("steps", cert.total_steps());
                let verdict = entangle_cert::verify(
                    &cert,
                    &gs,
                    &gd,
                    &lemmas,
                    &entangle_symbolic::SymCtx::new(),
                );
                sp.attr(
                    "outcome",
                    if verdict.is_ok() {
                        "accepted"
                    } else {
                        "rejected"
                    },
                );
                drop(sp);
                return match verdict {
                    Ok(()) => {
                        println!(
                            "Certificate verified: {} mappings, {} proof steps.",
                            cert.mappings.len(),
                            cert.total_steps()
                        );
                        Ok(0)
                    }
                    Err(e) => {
                        println!("Certificate REJECTED:\n{e}");
                        Ok(4)
                    }
                };
            }

            let ri = build_relation(&gs, &gd, maps)?;
            let mut opts = check_options(tracer, jobs);
            opts.certify = true;
            match check_refinement(&gs, &gd, &ri, &opts) {
                Ok(outcome) => {
                    let cert = outcome
                        .certificate
                        .as_ref()
                        .expect("certify mode always produces a certificate");
                    let text = entangle_cert::to_json(cert)
                        .map_err(|e| CliError(format!("cannot serialize certificate: {e}")))?;
                    if let Some(path) = emit {
                        fs::write(path, &text)
                            .map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
                    }
                    if *json {
                        println!("{text}");
                    } else {
                        println!(
                            "Refinement certified for {}: {} mappings, {} proof steps \
                             (kernel accepted).",
                            gd.name(),
                            cert.mappings.len(),
                            cert.total_steps()
                        );
                        println!("{}", par_summary(&outcome.par));
                        println!("\nOutput relation:");
                        print!("{}", outcome.output_relation.display(&gs));
                    }
                    Ok(0)
                }
                Err(e @ entangle::RefinementError::Lint { .. }) => {
                    println!("{e}");
                    Ok(3)
                }
                Err(e @ entangle::RefinementError::CertRejected { .. }) => {
                    println!("Certificate REJECTED:\n{e}");
                    Ok(4)
                }
                Err(e) => {
                    println!("Refinement FAILED:\n{e}");
                    Ok(1)
                }
            }
        }
        // Intercepted by `run_with`; kept for completeness if called
        // directly (no --trace file in that path).
        Command::Trace { .. } => run_trace(cmd, None, jobs),
        Command::Expect {
            gs,
            gd,
            maps,
            fs,
            fd,
        } => {
            let gs = load_graph(gs)?;
            let gd = load_graph(gd)?;
            let ri = build_relation(&gs, &gd, maps)?;
            let fs = fs.parse().map_err(|e| CliError(format!("--fs: {e}")))?;
            let fd = fd.parse().map_err(|e| CliError(format!("--fd: {e}")))?;
            let opts = check_options(tracer, jobs);
            match check_expectation(&gs, &gd, &ri, &fs, &fd, &opts) {
                Ok(_) => {
                    println!("User expectation holds.");
                    Ok(0)
                }
                Err(ExpectationError::Invalid(e)) => Err(CliError(e.to_string())),
                Err(e) => {
                    println!("{e}");
                    Ok(1)
                }
            }
        }
    }
}

/// The `entangle trace` subcommand: run a workload under an in-memory
/// collector and print its timing profile, or validate a saved trace file.
fn run_trace(
    cmd: &Command,
    trace_path: Option<&str>,
    jobs: Option<usize>,
) -> Result<i32, CliError> {
    let Command::Trace {
        workload,
        gs,
        gd,
        maps,
        top,
        json,
        perfetto,
        check,
    } = cmd
    else {
        unreachable!("run_trace only handles Command::Trace");
    };

    // Validation mode: parse a JSON-lines trace captured with --trace and
    // verify every span balances; optionally convert it.
    if let Some(path) = check {
        let text =
            fs::read_to_string(path).map_err(|e| CliError(format!("cannot read {path}: {e}")))?;
        let report =
            TraceReport::from_jsonl(&text).map_err(|e| CliError(format!("{path}: {e}")))?;
        if let Some(out) = perfetto {
            fs::write(out, report.to_chrome_json())
                .map_err(|e| CliError(format!("cannot write {out}: {e}")))?;
        }
        if *json {
            println!("{}", report.to_json());
        } else {
            println!(
                "{path}: valid trace — {} spans, {} events, all balanced.",
                report.spans.len(),
                report.events.len()
            );
        }
        return Ok(0);
    }

    let (name, gs, gd, ri) = match workload {
        Some(w) => {
            let mut cases = entangle_bench::zoo();
            let Some(pos) = cases.iter().position(|c| c.name == *w) else {
                let names: Vec<&str> = cases.iter().map(|c| c.name.as_str()).collect();
                return Err(CliError(format!(
                    "trace: unknown workload {w:?} (available: {})",
                    names.join(", ")
                )));
            };
            let case = cases.swap_remove(pos);
            let ri = case
                .dist
                .relation(&case.gs)
                .map_err(|e| CliError(format!("workload {w}: {e}")))?;
            (case.name, case.gs, case.dist.graph, ri)
        }
        None => {
            let gs_path = gs.as_ref().expect("parser guarantees file operands");
            let gd_path = gd.as_ref().expect("parser guarantees file operands");
            let gs = load_graph(gs_path)?;
            let gd = load_graph(gd_path)?;
            let ri = build_relation(&gs, &gd, maps)?;
            let name = gd.name().to_owned();
            (name, gs, gd, ri)
        }
    };

    // Full certified pipeline: every stage — lint, shard, mapping search,
    // outputs gate, trusted kernel — shows up in the profile.
    let (tracer, sink) = Tracer::collect();
    let mut opts = check_options(&tracer, jobs);
    opts.certify = true;
    let start = Instant::now();
    let result = check_refinement(&gs, &gd, &ri, &opts);
    let wall = start.elapsed();

    let records = sink.records();
    let report = TraceReport::from_records(&records)
        .map_err(|e| CliError(format!("internal: checker emitted an invalid trace: {e}")))?;

    if let Some(path) = trace_path {
        fs::write(path, sink.to_jsonl())
            .map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
    }
    if let Some(path) = perfetto {
        fs::write(path, report.to_chrome_json())
            .map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
    }

    let code = match &result {
        Ok(_) => 0,
        Err(entangle::RefinementError::Lint { .. }) => 3,
        Err(entangle::RefinementError::CertRejected { .. }) => 4,
        Err(_) => 1,
    };

    if *json {
        println!("{}", report.to_json());
        return Ok(code);
    }

    println!("workload : {name}");
    println!(
        "graphs   : {} ({} ops) -> {} ({} ops)",
        gs.name(),
        gs.num_nodes(),
        gd.name(),
        gd.num_nodes()
    );
    match &result {
        Ok(outcome) => {
            println!("verdict  : verified in {}", ms(wall));
            println!("{}", par_summary(&outcome.par));
        }
        Err(_) => println!("verdict  : FAILED in {}", ms(wall)),
    }
    println!();
    print_stage_table(&report);
    match &result {
        Ok(outcome) => print_saturation_profile(&outcome.saturation, *top),
        Err(e) => println!("\nRefinement FAILED:\n{e}"),
    }
    Ok(code)
}

/// Prints the per-stage wall-clock table from a collected trace. The
/// indented encode/saturate/extract rows are children of `stage:map` (per
/// sequential operator), so they sub-divide it rather than add to it.
fn print_stage_table(report: &TraceReport) {
    let total = report
        .find("check_refinement")
        .map(|s| s.dur_us)
        .unwrap_or(0)
        .max(1);
    let stages = [
        ("lint", "stage:lint"),
        ("shard", "stage:shard"),
        ("map", "stage:map"),
        ("  encode", "encode"),
        ("  saturate", "saturate"),
        ("  extract", "extract"),
        ("outputs", "stage:outputs"),
        ("certify", "stage:certify"),
    ];
    let mut rows = Vec::new();
    for (label, span) in stages {
        let n = report.spans_named(span).count();
        if n == 0 {
            continue; // stage skipped (e.g. shard short-circuited the run)
        }
        let us = report.total_us(span);
        rows.push(vec![
            label.to_owned(),
            n.to_string(),
            format!("{:.1}ms", us as f64 / 1e3),
            format!("{:.1}%", us as f64 * 100.0 / total as f64),
        ]);
    }
    entangle_bench::print_table(&["stage", "spans", "time", "% of check"], &rows);
}

/// Prints the hot-rule table, the stop-reason tally and the e-graph growth
/// curve from the checker's saturation telemetry.
fn print_saturation_profile(summary: &entangle::SaturationSummary, top: usize) {
    println!(
        "\nsaturation: {} runs, {} iterations, peak {} e-nodes",
        summary.runs(),
        summary.iterations(),
        summary.peak_nodes()
    );
    let stops: Vec<String> = summary
        .stop_counts()
        .iter()
        .filter(|(_, n)| *n > 0)
        .map(|(k, n)| format!("{k} {n}"))
        .collect();
    println!("stops     : {}", stops.join(", "));
    println!("growth    : {}", sparkline(&summary.growth()));

    let rules = summary.telemetry.rules_by_apply_time();
    let shown = top.min(rules.len());
    println!(
        "\nhot rules ({shown} of {} by cumulative apply time):",
        rules.len()
    );
    let rows: Vec<Vec<String>> = rules
        .iter()
        .take(top)
        .map(|(name, r)| {
            vec![
                (*name).to_owned(),
                r.matches.to_string(),
                r.applications.to_string(),
                format!("{:.1}ms", r.search_us as f64 / 1e3),
                format!("{:.1}ms", r.apply_us as f64 / 1e3),
            ]
        })
        .collect();
    entangle_bench::print_table(
        &["rule", "matches", "applications", "search", "apply"],
        &rows,
    );
}

/// Renders per-iteration e-node counts as a compact block-character curve,
/// downsampled (bucket maxima) to at most 60 columns.
fn sparkline(values: &[usize]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return "(no saturation iterations)".to_owned();
    }
    let max = (*values.iter().max().expect("non-empty")).max(1);
    let buckets = 60.min(values.len());
    let mut out = String::new();
    for b in 0..buckets {
        let lo = b * values.len() / buckets;
        let hi = (((b + 1) * values.len()) / buckets).max(lo + 1);
        let v = *values[lo..hi].iter().max().expect("non-empty bucket");
        let idx = v * (BARS.len() - 1) / max;
        out.push(BARS[idx.min(BARS.len() - 1)]);
    }
    out.push_str(&format!(
        "  (peak {max} e-nodes, {} iterations)",
        values.len()
    ));
    out
}

#[cfg(test)]
mod tests;
