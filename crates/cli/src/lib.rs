//! The `entangle` command-line tool.
//!
//! Checks model refinement on computation graphs serialized in the JSON
//! interchange format (the §5 bridge through which any front end — a
//! TorchDynamo exporter, an HLO translator — can reach the checker):
//!
//! ```text
//! entangle check   <gs.json> <gd.json> --map 'A=(concat A1 A2 1)' [--map ...]
//! entangle check   <gs.json> <gd.json> --maps relations.txt
//! entangle certify <gs.json> <gd.json> --maps relations.txt --emit cert.json
//! entangle certify <gs.json> <gd.json> --check cert.json
//! entangle expect  <gs.json> <gd.json> --maps relations.txt --fs F --fd '(concat F1 F2 0)'
//! entangle lint    <graph.json>
//! entangle info    <graph.json>
//! ```
//!
//! A maps file holds one `gs_tensor = s-expression` mapping per line
//! (`#`-prefixed lines are comments). Exit code 0 = verified, 1 = bug
//! found, 2 = usage/input error, 3 = static lint errors, 4 = certificate
//! rejected by the trusted kernel.

use std::fmt;
use std::fs;

use entangle::{check_expectation, check_refinement, CheckOptions, ExpectationError, Relation};
use entangle_ir::Graph;

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Refinement check between two graph files.
    Check {
        /// Path to the sequential graph JSON.
        gs: String,
        /// Path to the distributed graph JSON.
        gd: String,
        /// `name=expr` input mappings.
        maps: Vec<(String, String)>,
    },
    /// Proof-carrying refinement check: run the certified check and emit
    /// the kernel-accepted certificate, or re-check a saved one.
    Certify {
        /// Path to the sequential graph JSON.
        gs: String,
        /// Path to the distributed graph JSON.
        gd: String,
        /// `name=expr` input mappings (generation mode).
        maps: Vec<(String, String)>,
        /// Write the certificate JSON to this file after verification.
        emit: Option<String>,
        /// Re-check a saved certificate file instead of generating one.
        check: Option<String>,
        /// Print the certificate JSON to stdout.
        json: bool,
    },
    /// §4.4 expectation check.
    Expect {
        /// Path to the sequential graph JSON.
        gs: String,
        /// Path to the distributed graph JSON.
        gd: String,
        /// `name=expr` input mappings.
        maps: Vec<(String, String)>,
        /// `f_s` combiner expression over `G_s` tensor names.
        fs: String,
        /// `f_d` combiner expression over `G_d` tensor names.
        fd: String,
    },
    /// Run the static lint passes over one graph file.
    Lint {
        /// Path to the graph JSON.
        graph: String,
        /// Emit the report as JSON.
        json: bool,
    },
    /// Run the sharding-propagation analysis over one graph file.
    Shard {
        /// Path to the distributed graph JSON.
        gd: String,
        /// Optional sequential graph JSON (enables cross-rank checks and
        /// relation hints).
        gs: Option<String>,
        /// `name=expr` input mappings (paired mode).
        maps: Vec<(String, String)>,
        /// Emit the analysis as JSON.
        json: bool,
    },
    /// Print a summary of one graph file.
    Info {
        /// Path to the graph JSON.
        graph: String,
        /// Emit Graphviz DOT instead of the summary.
        dot: bool,
    },
    /// Print usage.
    Help,
}

/// CLI-level errors (usage and I/O).
#[derive(Debug)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

/// The usage text.
pub const USAGE: &str = "\
entangle — static refinement checking for distributed ML models

USAGE:
  entangle check   <gs.json> <gd.json> (--map 'name=(expr)')* [--maps FILE]
  entangle certify <gs.json> <gd.json> [--map ...|--maps FILE]
                   [--emit FILE] [--json]
  entangle certify <gs.json> <gd.json> --check FILE
  entangle expect  <gs.json> <gd.json> [--map ...|--maps FILE] --fs EXPR --fd EXPR
  entangle lint    <graph.json> [--json]
  entangle shard   <gd.json> [--gs <gs.json>] [--map ...|--maps FILE] [--json]
  entangle info    <graph.json> [--dot]
  entangle help

Mappings relate each G_s input tensor to an s-expression over G_d tensor
names, e.g.  --map 'A=(concat A1 A2 1)'. A --maps file holds one mapping
per line; '#' starts a comment.

lint runs the static diagnostics passes (well-formedness, distribution
consistency) over one graph and prints every finding; check runs them on
both graphs before any saturation (see E###/W### codes in the docs).

shard runs the abstract sharding-propagation analysis (SH## codes): with
--gs and mappings it seeds shard layouts from the input relation, checks
cross-rank consistency, and prints the relation hints it can prove;
without, it reports the per-tensor layout structure of the graph alone.

certify runs the proof-carrying check: the saturation engine's derivation
is extracted as a rewrite certificate and re-validated by the independent
trusted kernel before success is reported. --emit/--json export the
certificate; --check re-validates a previously exported certificate file
against the graphs without rerunning saturation.

EXIT CODES:  0 verified   1 refinement/expectation failed   2 usage error
             3 static lint errors   4 certificate rejected";

/// Parses argv (without the program name).
///
/// # Errors
///
/// Returns a usage error for unknown subcommands, missing operands or
/// malformed `--map` arguments.
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter();
    let sub = it.next().map(String::as_str).unwrap_or("help");
    match sub {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "lint" => {
            let graph = it
                .next()
                .ok_or_else(|| CliError("lint: missing <graph.json>".into()))?
                .clone();
            let json = match it.next().map(String::as_str) {
                None => false,
                Some("--json") => true,
                Some(other) => return Err(CliError(format!("lint: unknown flag {other}"))),
            };
            Ok(Command::Lint { graph, json })
        }
        "shard" => {
            let gd = it
                .next()
                .ok_or_else(|| CliError("shard: missing <gd.json>".into()))?
                .clone();
            let mut gs = None;
            let mut maps = Vec::new();
            let mut json = false;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--gs" => {
                        gs = Some(
                            it.next()
                                .ok_or_else(|| CliError("--gs needs a file path".into()))?
                                .clone(),
                        );
                    }
                    "--map" => {
                        let spec = it
                            .next()
                            .ok_or_else(|| CliError("--map needs name=expr".into()))?;
                        maps.push(parse_map_spec(spec)?);
                    }
                    "--maps" => {
                        let path = it
                            .next()
                            .ok_or_else(|| CliError("--maps needs a file path".into()))?;
                        let text = fs::read_to_string(path)
                            .map_err(|e| CliError(format!("cannot read {path}: {e}")))?;
                        maps.extend(parse_maps_file(&text)?);
                    }
                    "--json" => json = true,
                    other => return Err(CliError(format!("shard: unknown flag {other}"))),
                }
            }
            if gs.is_none() && !maps.is_empty() {
                return Err(CliError("shard: --map/--maps need --gs".into()));
            }
            Ok(Command::Shard { gd, gs, maps, json })
        }
        "info" => {
            let graph = it
                .next()
                .ok_or_else(|| CliError("info: missing <graph.json>".into()))?
                .clone();
            let dot = match it.next().map(String::as_str) {
                None => false,
                Some("--dot") => true,
                Some(other) => return Err(CliError(format!("info: unknown flag {other}"))),
            };
            Ok(Command::Info { graph, dot })
        }
        "certify" => {
            let gs = it
                .next()
                .ok_or_else(|| CliError("certify: missing <gs.json>".into()))?
                .clone();
            let gd = it
                .next()
                .ok_or_else(|| CliError("certify: missing <gd.json>".into()))?
                .clone();
            let mut maps = Vec::new();
            let mut emit = None;
            let mut check = None;
            let mut json = false;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--map" => {
                        let spec = it
                            .next()
                            .ok_or_else(|| CliError("--map needs name=expr".into()))?;
                        maps.push(parse_map_spec(spec)?);
                    }
                    "--maps" => {
                        let path = it
                            .next()
                            .ok_or_else(|| CliError("--maps needs a file path".into()))?;
                        let text = fs::read_to_string(path)
                            .map_err(|e| CliError(format!("cannot read {path}: {e}")))?;
                        maps.extend(parse_maps_file(&text)?);
                    }
                    "--emit" => {
                        emit = Some(
                            it.next()
                                .ok_or_else(|| CliError("--emit needs a file path".into()))?
                                .clone(),
                        );
                    }
                    "--check" => {
                        check = Some(
                            it.next()
                                .ok_or_else(|| CliError("--check needs a file path".into()))?
                                .clone(),
                        );
                    }
                    "--json" => json = true,
                    other => return Err(CliError(format!("certify: unknown flag {other}"))),
                }
            }
            if check.is_some() && (emit.is_some() || !maps.is_empty()) {
                return Err(CliError(
                    "certify: --check re-validates a saved certificate; it takes no \
                     --map/--maps/--emit"
                        .into(),
                ));
            }
            Ok(Command::Certify {
                gs,
                gd,
                maps,
                emit,
                check,
                json,
            })
        }
        "check" | "expect" => {
            let gs = it
                .next()
                .ok_or_else(|| CliError(format!("{sub}: missing <gs.json>")))?
                .clone();
            let gd = it
                .next()
                .ok_or_else(|| CliError(format!("{sub}: missing <gd.json>")))?
                .clone();
            let mut maps = Vec::new();
            let mut fs = None;
            let mut fd = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--map" => {
                        let spec = it
                            .next()
                            .ok_or_else(|| CliError("--map needs name=expr".into()))?;
                        maps.push(parse_map_spec(spec)?);
                    }
                    "--maps" => {
                        let path = it
                            .next()
                            .ok_or_else(|| CliError("--maps needs a file path".into()))?;
                        let text = fs::read_to_string(path)
                            .map_err(|e| CliError(format!("cannot read {path}: {e}")))?;
                        maps.extend(parse_maps_file(&text)?);
                    }
                    "--fs" => {
                        fs = Some(
                            it.next()
                                .ok_or_else(|| CliError("--fs needs an expression".into()))?
                                .clone(),
                        );
                    }
                    "--fd" => {
                        fd = Some(
                            it.next()
                                .ok_or_else(|| CliError("--fd needs an expression".into()))?
                                .clone(),
                        );
                    }
                    other => return Err(CliError(format!("unknown flag {other}"))),
                }
            }
            if sub == "check" {
                Ok(Command::Check { gs, gd, maps })
            } else {
                Ok(Command::Expect {
                    gs,
                    gd,
                    maps,
                    fs: fs.ok_or_else(|| CliError("expect: missing --fs".into()))?,
                    fd: fd.ok_or_else(|| CliError("expect: missing --fd".into()))?,
                })
            }
        }
        other => Err(CliError(format!("unknown subcommand {other}"))),
    }
}

/// Parses one `name=expr` mapping.
///
/// # Errors
///
/// Returns a usage error when the `=` separator is missing.
pub fn parse_map_spec(spec: &str) -> Result<(String, String), CliError> {
    let (name, expr) = spec
        .split_once('=')
        .ok_or_else(|| CliError(format!("malformed mapping {spec:?}: expected name=expr")))?;
    Ok((name.trim().to_owned(), expr.trim().to_owned()))
}

/// Parses a maps file (one `name = expr` per line, `#` comments).
///
/// # Errors
///
/// Returns a usage error for malformed lines.
pub fn parse_maps_file(text: &str) -> Result<Vec<(String, String)>, CliError> {
    let mut out = Vec::new();
    for (no, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(parse_map_spec(line).map_err(|e| CliError(format!("line {}: {e}", no + 1)))?);
    }
    Ok(out)
}

fn load_graph(path: &str) -> Result<Graph, CliError> {
    let text =
        fs::read_to_string(path).map_err(|e| CliError(format!("cannot read {path}: {e}")))?;
    Graph::from_json(&text).map_err(|e| CliError(format!("{path}: {e}")))
}

/// Loads a graph for linting: decode-level checks only, so graphs the full
/// validator would reject (stale shapes, non-topological order) still load
/// and get proper diagnostics instead of a parse error.
fn load_graph_unvalidated(path: &str) -> Result<Graph, CliError> {
    let text =
        fs::read_to_string(path).map_err(|e| CliError(format!("cannot read {path}: {e}")))?;
    Graph::from_json_unvalidated(&text).map_err(|e| CliError(format!("{path}: {e}")))
}

fn build_relation(gs: &Graph, gd: &Graph, maps: &[(String, String)]) -> Result<Relation, CliError> {
    let mut b = Relation::builder(gs, gd);
    for (name, expr) in maps {
        b.map(name, expr)
            .map_err(|e| CliError(format!("mapping {name}: {e}")))?;
    }
    Ok(b.build())
}

/// Runs a parsed command, printing to stdout; returns the process exit code.
pub fn run(cmd: &Command) -> i32 {
    match run_inner(cmd) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("\n{USAGE}");
            2
        }
    }
}

fn run_inner(cmd: &Command) -> Result<i32, CliError> {
    match cmd {
        Command::Help => {
            println!("{USAGE}");
            Ok(0)
        }
        Command::Lint { graph, json } => {
            let g = load_graph_unvalidated(graph)?;
            let report = entangle_lint::lint_graph(&g);
            if *json {
                println!("{}", report.to_json(Some(&g)));
                return Ok(if report.is_clean() { 0 } else { 3 });
            }
            if !report.diagnostics.is_empty() {
                println!("{}", report.render(Some(&g)));
            }
            println!(
                "{}: {} ({} operators, {} tensors)",
                g.name(),
                report.summary(),
                g.num_nodes(),
                g.num_tensors(),
            );
            Ok(if report.is_clean() { 0 } else { 3 })
        }
        Command::Shard { gd, gs, maps, json } => {
            let gd = load_graph(gd)?;
            let analysis = match gs {
                None => entangle_shard::analyze_graph(&gd),
                Some(gs) => {
                    let gs = load_graph(gs)?;
                    let mut parsed = Vec::with_capacity(maps.len());
                    for (name, expr) in maps {
                        let e = expr
                            .parse()
                            .map_err(|e| CliError(format!("mapping {name}: {e}")))?;
                        parsed.push((name.clone(), e));
                    }
                    entangle_shard::analyze_pair(&gs, &gd, &parsed, &[])
                }
            };
            if *json {
                println!("{}", analysis.to_json(&gd));
                return Ok(if analysis.is_clean() { 0 } else { 3 });
            }
            println!("layouts:");
            print!("{}", analysis.describe(&gd));
            if !analysis.report.diagnostics.is_empty() {
                println!("{}", analysis.report.render(Some(&gd)));
            }
            if !analysis.hints.is_empty() {
                println!("proven relation hints:");
                for h in &analysis.hints {
                    println!("  {} = {}", h.gs_tensor, h.expr);
                }
            }
            println!("{}: {}", gd.name(), analysis.summary());
            Ok(if analysis.is_clean() { 0 } else { 3 })
        }
        Command::Info { graph, dot } => {
            let g = load_graph(graph)?;
            if *dot {
                print!("{}", g.to_dot());
                return Ok(0);
            }
            println!("graph   : {}", g.name());
            println!("operators: {}", g.num_nodes());
            println!("tensors  : {}", g.num_tensors());
            println!(
                "inputs   : {}",
                g.inputs()
                    .iter()
                    .map(|&t| format!("{} {}", g.tensor(t).name, g.tensor(t).shape))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            println!(
                "outputs  : {}",
                g.outputs()
                    .iter()
                    .map(|&t| format!("{} {}", g.tensor(t).name, g.tensor(t).shape))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            println!("lint     : {}", entangle_lint::lint_graph(&g).summary());
            println!("shard    : {}", entangle_shard::analyze_graph(&g).summary());
            Ok(0)
        }
        Command::Check { gs, gd, maps } => {
            let gs = load_graph(gs)?;
            let gd = load_graph(gd)?;
            let ri = build_relation(&gs, &gd, maps)?;
            match check_refinement(&gs, &gd, &ri, &CheckOptions::default()) {
                Ok(outcome) => {
                    println!("Refinement verification succeeded for {}.", gd.name());
                    println!("\nOutput relation:");
                    print!("{}", outcome.output_relation.display(&gs));
                    Ok(0)
                }
                Err(e @ entangle::RefinementError::Lint { .. }) => {
                    println!("{e}");
                    Ok(3)
                }
                Err(e @ entangle::RefinementError::CertRejected { .. }) => {
                    println!("Certificate REJECTED:\n{e}");
                    Ok(4)
                }
                Err(e) => {
                    println!("Refinement FAILED:\n{e}");
                    Ok(1)
                }
            }
        }
        Command::Certify {
            gs,
            gd,
            maps,
            emit,
            check,
            json,
        } => {
            let gs = load_graph(gs)?;
            let gd = load_graph(gd)?;

            // Re-check mode: validate a saved certificate with the trusted
            // kernel alone — no relation building, no saturation.
            if let Some(path) = check {
                let text = fs::read_to_string(path)
                    .map_err(|e| CliError(format!("cannot read {path}: {e}")))?;
                let cert = match entangle_cert::from_json(&text) {
                    Ok(cert) => cert,
                    Err(e) => {
                        println!("Certificate REJECTED:\n{e}");
                        return Ok(4);
                    }
                };
                let lemmas = entangle_lemmas::rewrites_of(&entangle_lemmas::registry());
                return match entangle_cert::verify(
                    &cert,
                    &gs,
                    &gd,
                    &lemmas,
                    &entangle_symbolic::SymCtx::new(),
                ) {
                    Ok(()) => {
                        println!(
                            "Certificate verified: {} mappings, {} proof steps.",
                            cert.mappings.len(),
                            cert.total_steps()
                        );
                        Ok(0)
                    }
                    Err(e) => {
                        println!("Certificate REJECTED:\n{e}");
                        Ok(4)
                    }
                };
            }

            let ri = build_relation(&gs, &gd, maps)?;
            let opts = CheckOptions {
                certify: true,
                ..CheckOptions::default()
            };
            match check_refinement(&gs, &gd, &ri, &opts) {
                Ok(outcome) => {
                    let cert = outcome
                        .certificate
                        .as_ref()
                        .expect("certify mode always produces a certificate");
                    let text = entangle_cert::to_json(cert)
                        .map_err(|e| CliError(format!("cannot serialize certificate: {e}")))?;
                    if let Some(path) = emit {
                        fs::write(path, &text)
                            .map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
                    }
                    if *json {
                        println!("{text}");
                    } else {
                        println!(
                            "Refinement certified for {}: {} mappings, {} proof steps \
                             (kernel accepted).",
                            gd.name(),
                            cert.mappings.len(),
                            cert.total_steps()
                        );
                        println!("\nOutput relation:");
                        print!("{}", outcome.output_relation.display(&gs));
                    }
                    Ok(0)
                }
                Err(e @ entangle::RefinementError::Lint { .. }) => {
                    println!("{e}");
                    Ok(3)
                }
                Err(e @ entangle::RefinementError::CertRejected { .. }) => {
                    println!("Certificate REJECTED:\n{e}");
                    Ok(4)
                }
                Err(e) => {
                    println!("Refinement FAILED:\n{e}");
                    Ok(1)
                }
            }
        }
        Command::Expect {
            gs,
            gd,
            maps,
            fs,
            fd,
        } => {
            let gs = load_graph(gs)?;
            let gd = load_graph(gd)?;
            let ri = build_relation(&gs, &gd, maps)?;
            let fs = fs.parse().map_err(|e| CliError(format!("--fs: {e}")))?;
            let fd = fd.parse().map_err(|e| CliError(format!("--fd: {e}")))?;
            match check_expectation(&gs, &gd, &ri, &fs, &fd, &CheckOptions::default()) {
                Ok(_) => {
                    println!("User expectation holds.");
                    Ok(0)
                }
                Err(ExpectationError::Invalid(e)) => Err(CliError(e.to_string())),
                Err(e) => {
                    println!("{e}");
                    Ok(1)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests;
