//! Binary entry point; all logic lives in the library for testability.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, flags) = match entangle_cli::parse_invocation(&args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", entangle_cli::USAGE);
            std::process::exit(2);
        }
    };
    std::process::exit(entangle_cli::run_with(&cmd, &flags));
}
