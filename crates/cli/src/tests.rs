use std::fs;

use entangle_models::{gpt, Arch, ModelConfig};
use entangle_parallel::{parallelize, Strategy};

use crate::{
    parse_args, parse_invocation, parse_map_spec, parse_maps_file, run, run_traced, Command,
};

fn tmpdir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("entangle-cli-test-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn parse_check_command() {
    let args: Vec<String> = ["check", "a.json", "b.json", "--map", "A=(concat A1 A2 1)"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    match parse_args(&args).unwrap() {
        Command::Check { gs, gd, maps } => {
            assert_eq!(gs, "a.json");
            assert_eq!(gd, "b.json");
            assert_eq!(maps, vec![("A".to_owned(), "(concat A1 A2 1)".to_owned())]);
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn parse_errors() {
    let to_args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
    assert!(parse_args(&to_args(&["check"])).is_err());
    assert!(parse_args(&to_args(&["check", "a"])).is_err());
    assert!(parse_args(&to_args(&["check", "a", "b", "--map"])).is_err());
    assert!(parse_args(&to_args(&["check", "a", "b", "--bogus"])).is_err());
    assert!(parse_args(&to_args(&["expect", "a", "b"])).is_err()); // missing fs/fd
    assert!(parse_args(&to_args(&["frobnicate"])).is_err());
    assert!(parse_args(&to_args(&["info", "g.json", "--bogus"])).is_err());
    assert!(matches!(
        parse_args(&to_args(&["info", "g.json", "--dot"])),
        Ok(Command::Info { dot: true, .. })
    ));
    assert!(matches!(parse_args(&to_args(&["help"])), Ok(Command::Help)));
    assert!(matches!(parse_args(&[]), Ok(Command::Help)));
}

#[test]
fn parse_shard_command() {
    let to_args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
    match parse_args(&to_args(&[
        "shard",
        "gd.json",
        "--gs",
        "gs.json",
        "--map",
        "A=(concat A1 A2 1)",
        "--json",
    ]))
    .unwrap()
    {
        Command::Shard { gd, gs, maps, json } => {
            assert_eq!(gd, "gd.json");
            assert_eq!(gs.as_deref(), Some("gs.json"));
            assert_eq!(maps.len(), 1);
            assert!(json);
        }
        other => panic!("unexpected {other:?}"),
    }
    // Self-seeded mode: just the graph.
    assert!(matches!(
        parse_args(&to_args(&["shard", "gd.json"])),
        Ok(Command::Shard {
            gs: None,
            json: false,
            ..
        })
    ));
    assert!(parse_args(&to_args(&["shard"])).is_err());
    // Mappings are meaningless without a G_s to resolve them against.
    assert!(parse_args(&to_args(&["shard", "gd.json", "--map", "A=B"])).is_err());
    assert!(parse_args(&to_args(&["lint", "g.json", "--json"])).is_ok());
}

#[test]
fn shard_command_end_to_end() {
    let dir = tmpdir();
    let cfg = ModelConfig::tiny();
    let gs = gpt(&cfg);
    let dist = parallelize(&cfg, Arch::Gpt, &Strategy::tp(2));

    let gs_path = dir.join("shard_gs.json");
    let gd_path = dir.join("shard_gd.json");
    let maps_path = dir.join("shard_maps.txt");
    fs::write(&gs_path, gs.to_json().unwrap()).unwrap();
    fs::write(&gd_path, dist.graph.to_json().unwrap()).unwrap();
    let maps_text: String = dist
        .input_maps
        .iter()
        .map(|(name, expr)| format!("{name} = {expr}\n"))
        .collect();
    fs::write(&maps_path, maps_text).unwrap();

    // Paired mode over a correct TP(2) strategy: clean, exit 0.
    let cmd = Command::Shard {
        gd: gd_path.to_str().unwrap().to_owned(),
        gs: Some(gs_path.to_str().unwrap().to_owned()),
        maps: parse_maps_file(&fs::read_to_string(&maps_path).unwrap()).unwrap(),
        json: false,
    };
    assert_eq!(run(&cmd), 0, "correct TP(2) sharding analyzes clean");

    // Self-seeded and JSON modes also succeed on the same graph.
    let cmd = Command::Shard {
        gd: gd_path.to_str().unwrap().to_owned(),
        gs: None,
        maps: Vec::new(),
        json: true,
    };
    assert_eq!(run(&cmd), 0, "self-seeded shard analysis is clean");
}

#[test]
fn parse_trace_command() {
    let to_args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
    // Workload mode, dashes normalized to the file-stem underscores.
    match parse_args(&to_args(&["trace", "gpt-tp2", "--top", "5"])).unwrap() {
        Command::Trace { workload, top, .. } => {
            assert_eq!(workload.as_deref(), Some("gpt_tp2"));
            assert_eq!(top, 5);
        }
        other => panic!("unexpected {other:?}"),
    }
    // File mode with flags.
    match parse_args(&to_args(&[
        "trace",
        "a.json",
        "b.json",
        "--map",
        "A=(concat A1 A2 1)",
        "--perfetto",
        "out.json",
        "--json",
    ]))
    .unwrap()
    {
        Command::Trace {
            workload,
            gs,
            gd,
            maps,
            json,
            perfetto,
            ..
        } => {
            assert_eq!(workload, None);
            assert_eq!(gs.as_deref(), Some("a.json"));
            assert_eq!(gd.as_deref(), Some("b.json"));
            assert_eq!(maps.len(), 1);
            assert!(json);
            assert_eq!(perfetto.as_deref(), Some("out.json"));
        }
        other => panic!("unexpected {other:?}"),
    }
    // Validation mode.
    assert!(matches!(
        parse_args(&to_args(&["trace", "--check", "t.jsonl"])),
        Ok(Command::Trace { check: Some(_), .. })
    ));
    // Errors: no operands, too many, --check with operands, maps on a
    // named workload, bad --top.
    assert!(parse_args(&to_args(&["trace"])).is_err());
    assert!(parse_args(&to_args(&["trace", "a", "b", "c"])).is_err());
    assert!(parse_args(&to_args(&["trace", "gpt-tp2", "--check", "t"])).is_err());
    assert!(parse_args(&to_args(&["trace", "gpt-tp2", "--map", "A=B"])).is_err());
    assert!(parse_args(&to_args(&["trace", "gpt-tp2", "--top", "many"])).is_err());
    assert!(parse_args(&to_args(&["trace", "gpt-tp2", "--bogus"])).is_err());
}

#[test]
fn parse_invocation_extracts_global_flags() {
    let to_args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
    // Leading position.
    let (cmd, flags) =
        parse_invocation(&to_args(&["--trace", "out.jsonl", "lint", "g.json"])).unwrap();
    assert!(matches!(cmd, Command::Lint { .. }));
    assert_eq!(flags.trace.as_deref(), Some("out.jsonl"));
    assert_eq!(flags.jobs, None);
    // Trailing position.
    let (cmd, flags) =
        parse_invocation(&to_args(&["info", "g.json", "--trace", "t.jsonl"])).unwrap();
    assert!(matches!(cmd, Command::Info { .. }));
    assert_eq!(flags.trace.as_deref(), Some("t.jsonl"));
    // Absent.
    let (_, flags) = parse_invocation(&to_args(&["help"])).unwrap();
    assert_eq!(flags.trace, None);
    assert_eq!(flags.jobs, None);
    // --jobs in any position, combined with --trace.
    let (cmd, flags) = parse_invocation(&to_args(&[
        "--jobs", "4", "check", "a.json", "b.json", "--trace", "t.jsonl",
    ]))
    .unwrap();
    assert!(matches!(cmd, Command::Check { .. }));
    assert_eq!(flags.jobs, Some(4));
    assert_eq!(flags.trace.as_deref(), Some("t.jsonl"));
    let (_, flags) = parse_invocation(&to_args(&["lint", "g.json", "--jobs", "1"])).unwrap();
    assert_eq!(flags.jobs, Some(1));
    // Missing or malformed operands.
    assert!(parse_invocation(&to_args(&["lint", "g.json", "--trace"])).is_err());
    assert!(parse_invocation(&to_args(&["lint", "g.json", "--jobs"])).is_err());
    assert!(parse_invocation(&to_args(&["lint", "g.json", "--jobs", "many"])).is_err());
    assert!(parse_invocation(&to_args(&["check", "a", "b", "--jobs", "-2"])).is_err());
}

#[test]
fn trace_subcommand_end_to_end() {
    let dir = tmpdir();
    let cfg = ModelConfig::tiny();
    let gs = gpt(&cfg);
    let dist = parallelize(&cfg, Arch::Gpt, &Strategy::tp(2));

    let gs_path = dir.join("trace_gs.json");
    let gd_path = dir.join("trace_gd.json");
    fs::write(&gs_path, gs.to_json().unwrap()).unwrap();
    fs::write(&gd_path, dist.graph.to_json().unwrap()).unwrap();

    let trace_path = dir.join("trace_out.jsonl");
    let perfetto_path = dir.join("trace_perfetto.json");
    let cmd = Command::Trace {
        workload: None,
        gs: Some(gs_path.to_str().unwrap().to_owned()),
        gd: Some(gd_path.to_str().unwrap().to_owned()),
        maps: dist
            .input_maps
            .iter()
            .map(|(n, e)| (n.clone(), e.to_string()))
            .collect(),
        top: 5,
        json: false,
        perfetto: Some(perfetto_path.to_str().unwrap().to_owned()),
        check: None,
    };
    assert_eq!(
        run_traced(&cmd, Some(trace_path.to_str().unwrap())),
        0,
        "correct TP implementation traces and verifies"
    );

    // The emitted JSON-lines trace parses, balances, and covers every
    // pipeline stage of the certified run.
    let report = entangle_trace::TraceReport::from_jsonl(&fs::read_to_string(&trace_path).unwrap())
        .expect("emitted trace is valid");
    for stage in [
        "check_refinement",
        "stage:lint",
        "stage:shard",
        "stage:map",
        "stage:outputs",
        "stage:certify",
    ] {
        assert!(report.find(stage).is_some(), "missing span {stage}");
    }
    // The Perfetto export is emitted and shaped like a trace-event file.
    let perfetto = fs::read_to_string(&perfetto_path).unwrap();
    assert!(perfetto.starts_with("{\"traceEvents\":["));

    // Validation mode accepts the file it just wrote.
    let cmd = Command::Trace {
        workload: None,
        gs: None,
        gd: None,
        maps: vec![],
        top: 10,
        json: false,
        perfetto: None,
        check: Some(trace_path.to_str().unwrap().to_owned()),
    };
    assert_eq!(run(&cmd), 0, "self-emitted trace validates");

    // Validation mode rejects garbage with a usage error.
    let bad_path = dir.join("trace_bad.jsonl");
    fs::write(
        &bad_path,
        "{\"type\":\"begin\",\"id\":1,\"name\":\"x\",\"t_us\":0}\n",
    )
    .unwrap();
    let cmd = Command::Trace {
        workload: None,
        gs: None,
        gd: None,
        maps: vec![],
        top: 10,
        json: false,
        perfetto: None,
        check: Some(bad_path.to_str().unwrap().to_owned()),
    };
    assert_eq!(run(&cmd), 2, "unbalanced trace is rejected");

    fs::remove_dir_all(&dir).ok();
}

#[test]
fn global_trace_flag_is_exit_code_neutral() {
    let dir = tmpdir();
    let cfg = ModelConfig::tiny();
    let gs = gpt(&cfg);
    let dist = parallelize(&cfg, Arch::Gpt, &Strategy::tp(2));

    let gs_path = dir.join("neutral_gs.json");
    let gd_path = dir.join("neutral_gd.json");
    fs::write(&gs_path, gs.to_json().unwrap()).unwrap();
    fs::write(&gd_path, dist.graph.to_json().unwrap()).unwrap();

    // A failing check keeps exit code 1 under --trace, and still emits a
    // balanced trace whose root records the failure.
    let mut bad_maps: Vec<(String, String)> = dist
        .input_maps
        .iter()
        .map(|(n, e)| (n.clone(), e.to_string()))
        .collect();
    for (name, expr) in &mut bad_maps {
        if name == "L0.wq" {
            *expr = "(concat L0.wq.1 L0.wq.0 1)".to_owned();
        }
    }
    let cmd = Command::Check {
        gs: gs_path.to_str().unwrap().to_owned(),
        gd: gd_path.to_str().unwrap().to_owned(),
        maps: bad_maps,
    };
    assert_eq!(run(&cmd), 1);
    let trace_path = dir.join("neutral_out.jsonl");
    assert_eq!(run_traced(&cmd, Some(trace_path.to_str().unwrap())), 1);
    let report = entangle_trace::TraceReport::from_jsonl(&fs::read_to_string(&trace_path).unwrap())
        .expect("failure trace is still balanced");
    let root = report.find("cli:check").expect("cli root span");
    assert_eq!(root.attr("exit"), Some("1"));
    // The swapped shards are caught by the propagation pass, before any
    // saturation runs.
    let check = report.find("check_refinement").expect("checker root span");
    assert_eq!(check.attr("outcome"), Some("shard-violation"));
    assert!(report.find("stage:map").is_none(), "search never started");

    fs::remove_dir_all(&dir).ok();
}

#[test]
fn map_spec_parsing() {
    assert_eq!(
        parse_map_spec("A = (concat A1 A2 1)").unwrap(),
        ("A".to_owned(), "(concat A1 A2 1)".to_owned())
    );
    assert!(parse_map_spec("no-equals-sign").is_err());
}

#[test]
fn maps_file_parsing() {
    let text = "# input relation\nA = (concat A1 A2 1)\n\nB=B_d\n";
    let maps = parse_maps_file(text).unwrap();
    assert_eq!(maps.len(), 2);
    assert_eq!(maps[1], ("B".to_owned(), "B_d".to_owned()));
    assert!(parse_maps_file("bad line without equals").is_err());
}

#[test]
fn end_to_end_check_via_files() {
    let dir = tmpdir();
    let cfg = ModelConfig::tiny();
    let gs = gpt(&cfg);
    let dist = parallelize(&cfg, Arch::Gpt, &Strategy::tp(2));

    let gs_path = dir.join("gs.json");
    let gd_path = dir.join("gd.json");
    let maps_path = dir.join("maps.txt");
    fs::write(&gs_path, gs.to_json().unwrap()).unwrap();
    fs::write(&gd_path, dist.graph.to_json().unwrap()).unwrap();
    let maps_text: String = dist
        .input_maps
        .iter()
        .map(|(n, e)| format!("{n} = {e}\n"))
        .collect();
    fs::write(&maps_path, maps_text).unwrap();

    let cmd = Command::Check {
        gs: gs_path.to_str().unwrap().to_owned(),
        gd: gd_path.to_str().unwrap().to_owned(),
        maps: parse_maps_file(&fs::read_to_string(&maps_path).unwrap()).unwrap(),
    };
    assert_eq!(run(&cmd), 0, "correct TP implementation verifies");

    // A wrong mapping turns it into exit code 1.
    let mut bad_maps = parse_maps_file(&fs::read_to_string(&maps_path).unwrap()).unwrap();
    for (name, expr) in &mut bad_maps {
        if name == "L0.wq" {
            *expr = "(concat L0.wq.1 L0.wq.0 1)".to_owned();
        }
    }
    let cmd = Command::Check {
        gs: gs_path.to_str().unwrap().to_owned(),
        gd: gd_path.to_str().unwrap().to_owned(),
        maps: bad_maps,
    };
    assert_eq!(run(&cmd), 1, "swapped shards are a detected bug");

    // Missing files and malformed maps exit 2.
    let cmd = Command::Check {
        gs: "/nonexistent.json".to_owned(),
        gd: gd_path.to_str().unwrap().to_owned(),
        maps: vec![],
    };
    assert_eq!(run(&cmd), 2);

    let cmd = Command::Info {
        graph: gs_path.to_str().unwrap().to_owned(),
        dot: false,
    };
    assert_eq!(run(&cmd), 0);
    let cmd = Command::Info {
        graph: gs_path.to_str().unwrap().to_owned(),
        dot: true,
    };
    assert_eq!(run(&cmd), 0);

    fs::remove_dir_all(&dir).ok();
}

#[test]
fn expect_subcommand_end_to_end() {
    use entangle_ir::{DType, GraphBuilder, Op};
    let dir = tmpdir();
    // G_s: g = sum over rows; G_d: per-rank partials + aggregate.
    let mut gs = GraphBuilder::new("seq");
    let x = gs.input("x", &[4, 2], DType::F32);
    let g = gs
        .apply(
            "grad",
            Op::SumDim {
                dim: 0,
                keepdim: false,
            },
            &[x],
        )
        .unwrap();
    gs.mark_output(g);
    let gs = gs.finish().unwrap();

    let mut gd = GraphBuilder::new("dist");
    let x0 = gd.input("x.0", &[2, 2], DType::F32);
    let x1 = gd.input("x.1", &[2, 2], DType::F32);
    let g0 = gd
        .apply(
            "grad.0",
            Op::SumDim {
                dim: 0,
                keepdim: false,
            },
            &[x0],
        )
        .unwrap();
    let g1 = gd
        .apply(
            "grad.1",
            Op::SumDim {
                dim: 0,
                keepdim: false,
            },
            &[x1],
        )
        .unwrap();
    let agg = gd.apply("grad_agg", Op::AllReduce, &[g0, g1]).unwrap();
    gd.mark_output(g0);
    gd.mark_output(g1);
    gd.mark_output(agg);
    let gd = gd.finish().unwrap();

    let gs_path = dir.join("exp_gs.json");
    let gd_path = dir.join("exp_gd.json");
    fs::write(&gs_path, gs.to_json().unwrap()).unwrap();
    fs::write(&gd_path, gd.to_json().unwrap()).unwrap();

    let base = |fd: &str| Command::Expect {
        gs: gs_path.to_str().unwrap().to_owned(),
        gd: gd_path.to_str().unwrap().to_owned(),
        maps: vec![("x".to_owned(), "(concat x.0 x.1 0)".to_owned())],
        fs: "grad".to_owned(),
        fd: fd.to_owned(),
    };
    // Correct expectation: the aggregated gradient.
    assert_eq!(run(&base("grad_agg")), 0);
    // Wrong expectation: rank-local partial — violation, exit code 1.
    assert_eq!(run(&base("grad.0")), 1);
    // Malformed expectation — usage error, exit code 2.
    assert_eq!(run(&base("(concat nonexistent grad.0 0)")), 2);

    fs::remove_dir_all(&dir).ok();
}

#[test]
fn lint_subcommand_parsing() {
    let to_args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
    assert!(matches!(
        parse_args(&to_args(&["lint", "g.json"])),
        Ok(Command::Lint { .. })
    ));
    assert!(parse_args(&to_args(&["lint"])).is_err());
    assert!(parse_args(&to_args(&["lint", "g.json", "--bogus"])).is_err());
}

#[test]
fn lint_subcommand_end_to_end() {
    use entangle_ir::{DType, Dim, GraphBuilder, Op};
    let dir = tmpdir();

    // A well-formed graph lints clean: exit code 0.
    let cfg = ModelConfig::tiny();
    let clean_path = dir.join("lint_clean.json");
    fs::write(&clean_path, gpt(&cfg).to_json().unwrap()).unwrap();
    let cmd = Command::Lint {
        graph: clean_path.to_str().unwrap().to_owned(),
        json: false,
    };
    assert_eq!(run(&cmd), 0, "well-formed graph lints clean");

    // A gap-sharded graph (rows [4, 5) in no shard) exits 3.
    let mut gd = GraphBuilder::new("missharded");
    let x = gd.input("X", &[8, 4], DType::F32);
    let s1 = gd
        .apply(
            "S1",
            Op::Slice {
                dim: 0,
                start: Dim::from(0),
                end: Dim::from(4),
            },
            &[x],
        )
        .unwrap();
    let s2 = gd
        .apply(
            "S2",
            Op::Slice {
                dim: 0,
                start: Dim::from(5),
                end: Dim::from(8),
            },
            &[x],
        )
        .unwrap();
    gd.mark_output(s1);
    gd.mark_output(s2);
    let gd = gd.finish().unwrap();
    let bad_path = dir.join("lint_bad.json");
    fs::write(&bad_path, gd.to_json().unwrap()).unwrap();
    let cmd = Command::Lint {
        graph: bad_path.to_str().unwrap().to_owned(),
        json: false,
    };
    assert_eq!(run(&cmd), 3, "sharding gap is a lint error");

    // Missing file stays a usage error.
    let cmd = Command::Lint {
        graph: "/nonexistent.json".to_owned(),
        json: false,
    };
    assert_eq!(run(&cmd), 2);

    fs::remove_dir_all(&dir).ok();
}
