//! Abstract shape/dtype soundness (RL05): re-derive both sides of every
//! unconditioned pattern rule over a small ground palette and flag rules
//! whose sides disagree.
//!
//! The evaluator mirrors `TensorAnalysis::make` exactly — leaf metas in,
//! [`decode_op`] + [`infer_output`] up the term — so a disagreement here is
//! a disagreement the e-graph analysis would produce at saturation time,
//! found without building an e-graph. Conservatively, a combination only
//! counts when **both** sides derive a concrete tensor meta: instantiations
//! the operator vocabulary rejects (rank/shape errors, attribute positions
//! fed tensors) are skipped, so the pass has no false positives by
//! construction on rules it cannot fully evaluate.

use std::collections::HashMap;

use entangle_egraph::{PatternAst, Rewrite, Var};
use entangle_ir::{DType, Shape};
use entangle_lemmas::{decode_op, Meta, TensorAnalysis};
use entangle_symbolic::SymExpr;

/// One shape/dtype disagreement between a rule's two sides.
#[derive(Debug, Clone)]
pub struct ShapeFinding {
    /// Index of the offending rule in the analyzed slice.
    pub rule: usize,
    /// Human-readable description of the ground instantiation.
    pub binding: String,
    /// `shape dtype` derived for the LHS.
    pub lhs: String,
    /// `shape dtype` derived for the RHS.
    pub rhs: String,
}

/// The ground palette a variable can take: two shapes (square and
/// rectangular, to catch transpose-style swaps), a uniform dtype per sweep
/// (to catch dtype-changing rewrites), and the attribute ints `0`/`1`
/// (valid dims/indices for rank-2 shapes).
const SHAPES: [&[i64]; 2] = [&[4, 4], &[2, 4]];
const INTS: [i64; 2] = [0, 1];

/// Evaluates a pattern bottom-up under a ground environment, exactly as
/// `TensorAnalysis::make` would. Unknown leaves / undecodable applications
/// yield [`Meta::unknown`].
fn eval(ast: &PatternAst, env: &HashMap<Var, Meta>) -> Meta {
    match ast {
        PatternAst::Var(v) => env.get(v).cloned().unwrap_or_else(Meta::unknown),
        PatternAst::Int(i) => Meta::scalar(SymExpr::constant(*i)),
        PatternAst::Op(_, ch) if ch.is_empty() => Meta::unknown(),
        PatternAst::Op(sym, ch) => {
            let metas: Vec<Meta> = ch.iter().map(|c| eval(c, env)).collect();
            match decode_op(sym.as_str(), &metas) {
                Some((op, tensor_count)) => {
                    let inputs: Option<Vec<(Shape, DType)>> = metas[..tensor_count]
                        .iter()
                        .map(|m| Some((m.shape.clone()?, m.dtype?)))
                        .collect();
                    match inputs {
                        Some(inputs) => match entangle_ir::infer_output(&op, &inputs) {
                            Ok((shape, dtype)) => Meta::tensor(shape, dtype),
                            Err(_) => Meta::unknown(),
                        },
                        None => Meta::unknown(),
                    }
                }
                None => Meta::unknown(),
            }
        }
    }
}

fn render_meta(m: &Meta) -> String {
    match (&m.shape, m.dtype) {
        (Some(s), Some(d)) => format!("{s} {d:?}"),
        _ => "?".to_owned(),
    }
}

fn render_binding(vars: &[Var], env: &HashMap<Var, Meta>) -> String {
    vars.iter()
        .map(|v| {
            let m = &env[v];
            let val = match &m.scalar {
                Some(s) => format!("{s}"),
                None => render_meta(m),
            };
            format!("{v}={val}")
        })
        .collect::<Vec<_>>()
        .join(", ")
}

/// Checks one rule over the palette; returns the first disagreement.
fn check_rule(rule: usize, rw: &Rewrite<TensorAnalysis>) -> Option<ShapeFinding> {
    let rhs = rw.rhs()?; // pattern rules only — dyn appliers have no static RHS
    if rw.has_condition() {
        return None; // conditions gate instantiations the palette can't model
    }
    let lhs = rw.searcher().ast();
    let vars = lhs.vars();
    // Per-variable choices: each var is either a tensor of one of the
    // palette shapes or an attribute int. The dtype is uniform per sweep.
    for dtype in [DType::F32, DType::I64] {
        let choices: Vec<Meta> = SHAPES
            .iter()
            .map(|dims| Meta::tensor(Shape::of(dims), dtype))
            .chain(INTS.iter().map(|&i| Meta::scalar(SymExpr::constant(i))))
            .collect();
        let mut picks = vec![0usize; vars.len()];
        loop {
            let env: HashMap<Var, Meta> = vars
                .iter()
                .zip(&picks)
                .map(|(&v, &p)| (v, choices[p].clone()))
                .collect();
            let l = eval(lhs, &env);
            if l.shape.is_some() && l.dtype.is_some() {
                let r = eval(rhs.ast(), &env);
                if r.shape.is_some()
                    && r.dtype.is_some()
                    && (l.shape != r.shape || l.dtype != r.dtype)
                {
                    return Some(ShapeFinding {
                        rule,
                        binding: render_binding(&vars, &env),
                        lhs: render_meta(&l),
                        rhs: render_meta(&r),
                    });
                }
            }
            // Odometer over the choice space.
            let mut k = 0;
            loop {
                if k == picks.len() {
                    break;
                }
                picks[k] += 1;
                if picks[k] < choices.len() {
                    break;
                }
                picks[k] = 0;
                k += 1;
            }
            if k == picks.len() {
                break;
            }
        }
    }
    None
}

/// Runs the shape/dtype soundness pass over a rewrite slice.
pub fn shape_findings(rewrites: &[Rewrite<TensorAnalysis>]) -> Vec<ShapeFinding> {
    rewrites
        .iter()
        .enumerate()
        .filter_map(|(i, rw)| check_rule(i, rw))
        .collect()
}
