//! The rule-interaction graph: which rules can feed which, and which of
//! the resulting cycles are generative.
//!
//! Edge `A → B` means *output of `A` can trigger `B`*: some operator-rooted
//! subterm of `A`'s effective right-hand side unifies (after renaming
//! apart) with `B`'s left-hand-side **root** pattern. Root-only matching is
//! deliberate: matching against every LHS subpattern connects nearly the
//! whole corpus through shared connective tissue (`concat`, `add`) into one
//! uninformative mega-component, while the root is exactly what saturation
//! searches for.
//!
//! A strongly connected component with a cycle is *generative* when it
//! contains a **driver**: an unconditioned rule that duplicates a bound
//! variable. Such a cycle re-feeds itself strictly growing material —
//! statically, this is the `scalar_mul-distribute` ⇄ `scalar_mul-compose`
//! blowup the MoE trace measures dynamically.

use entangle_egraph::Rewrite;
use entangle_lemmas::TensorAnalysis;

use crate::classify::{effective_rhs, RuleClass};
use crate::pattern_util::{op_subterms, rename_vars, unifiable};

/// The directed rule-interaction graph over the corpus (indices into the
/// rewrite slice it was built from).
#[derive(Debug, Clone)]
pub struct InteractionGraph {
    /// `edges[i]` = sorted indices of rules whose LHS root unifies with an
    /// RHS subterm of rule `i`.
    pub edges: Vec<Vec<usize>>,
}

/// One generative cycle: a strongly connected component with at least one
/// driver. Indices are into the rewrite slice, sorted ascending.
#[derive(Debug, Clone)]
pub struct GenerativeCycle {
    /// Every rule in the component.
    pub members: Vec<usize>,
    /// The duplicating, unconditioned rules that make the cycle grow.
    pub drivers: Vec<usize>,
}

/// Builds the interaction graph for a rewrite slice.
pub fn interaction_graph(rewrites: &[Rewrite<TensorAnalysis>]) -> InteractionGraph {
    // Rename each side apart once up front; unification treats shared
    // variable names as shared variables, and distinct rules' `?x`s are not.
    let rhs_subterms: Vec<Vec<entangle_egraph::PatternAst>> = rewrites
        .iter()
        .map(|rw| match effective_rhs(rw) {
            Some(rhs) => op_subterms(rhs.ast())
                .into_iter()
                .map(|t| rename_vars(t, "·r"))
                .collect(),
            None => Vec::new(),
        })
        .collect();
    let lhs_roots: Vec<entangle_egraph::PatternAst> = rewrites
        .iter()
        .map(|rw| rename_vars(rw.searcher().ast(), "·l"))
        .collect();
    let edges = rhs_subterms
        .iter()
        .map(|subs| {
            lhs_roots
                .iter()
                .enumerate()
                .filter(|(_, lhs)| subs.iter().any(|sub| unifiable(sub, lhs)))
                .map(|(j, _)| j)
                .collect()
        })
        .collect();
    InteractionGraph { edges }
}

/// Iterative Tarjan SCC. Components are returned with members sorted
/// ascending, and the component list itself sorted by smallest member, so
/// the output is deterministic regardless of traversal order.
fn sccs(edges: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = edges.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack = Vec::new();
    let mut next_index = 0usize;
    let mut out: Vec<Vec<usize>> = Vec::new();

    // Explicit call stack: (node, next child position).
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut call = vec![(root, 0usize)];
        while let Some(&mut (v, ref mut ci)) = call.last_mut() {
            if *ci == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = edges[v].get(*ci) {
                *ci += 1;
                if index[w] == usize::MAX {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    out.push(comp);
                }
                call.pop();
                if let Some(&mut (u, _)) = call.last_mut() {
                    low[u] = low[u].min(low[v]);
                }
            }
        }
    }
    out.sort_unstable_by_key(|c| c[0]);
    out
}

/// Finds every generative cycle: an SCC that actually cycles (size > 1, or
/// a self-loop) and contains at least one driver.
pub fn generative_cycles(graph: &InteractionGraph, classes: &[RuleClass]) -> Vec<GenerativeCycle> {
    sccs(&graph.edges)
        .into_iter()
        .filter(|comp| comp.len() > 1 || graph.edges[comp[0]].contains(&comp[0]))
        .filter_map(|comp| {
            let drivers: Vec<usize> = comp
                .iter()
                .copied()
                .filter(|&i| classes[i].duplicating && !classes[i].conditioned)
                .collect();
            (!drivers.is_empty()).then_some(GenerativeCycle {
                members: comp,
                drivers,
            })
        })
        .collect()
}
