use entangle_lemmas::registry;

use crate::{analyze, backoff_schedule, classify, codes, GrowthClass};

fn corpus() -> Vec<entangle_egraph::Rewrite<entangle_lemmas::TensorAnalysis>> {
    registry().into_iter().map(|l| l.rewrite).collect()
}

#[test]
fn classification_anchors() {
    let rewrites = corpus();
    let by_name = |name: &str| {
        let rw = rewrites
            .iter()
            .find(|r| r.name() == name)
            .unwrap_or_else(|| panic!("{name} not in corpus"));
        classify(rw)
    };
    // The measured blowup driver duplicates its scalar attributes.
    let distribute = by_name("scalar_mul-distribute");
    assert_eq!(distribute.class, GrowthClass::Generative);
    assert!(distribute.duplicating && !distribute.conditioned);
    // Its inverse erases the duplication: strictly simplifying.
    let factor = by_name("scalar_mul-factor");
    assert_eq!(factor.class, GrowthClass::Simplifying);
    assert!(!factor.expanding);
    // The hinted gcd-folding applier mints fresh scalars but does not
    // duplicate — generative member, never a driver.
    let compose = by_name("scalar_mul-compose");
    assert_eq!(compose.class, GrowthClass::Generative);
    assert!(compose.expanding && !compose.duplicating);
    assert!(compose.dynamic && !compose.opaque);
}

#[test]
fn distribute_compose_cycle_is_flagged() {
    let rewrites = corpus();
    let analysis = analyze(&rewrites);
    let cycle = analysis
        .cycles
        .iter()
        .find(|cy| {
            cy.members
                .iter()
                .any(|&i| analysis.classes[i].name == "scalar_mul-distribute")
        })
        .expect("the distribute cycle must be found statically");
    let member_names: Vec<&str> = cycle
        .members
        .iter()
        .map(|&i| analysis.classes[i].name.as_str())
        .collect();
    assert!(
        member_names.contains(&"scalar_mul-compose"),
        "distribute and compose must land in one cycle, got {member_names:?}"
    );
    assert!(cycle
        .drivers
        .iter()
        .any(|&i| analysis.classes[i].name == "scalar_mul-distribute"));
    // And it surfaces as an RL02 diagnostic naming the driver.
    let rl02 =
        analysis.report.diagnostics.iter().find(|d| {
            d.code == codes::GENERATIVE_CYCLE && d.message.contains("scalar_mul-distribute")
        });
    assert!(rl02.is_some(), "RL02 must name the distribute driver");
}

#[test]
fn throttle_set_spares_simplifying_rules() {
    let rewrites = corpus();
    let analysis = analyze(&rewrites);
    assert!(
        analysis
            .throttled
            .iter()
            .any(|n| n == "scalar_mul-distribute"),
        "the blowup driver must be throttled"
    );
    // Only the duplicating drivers are throttled: simplifying rules and
    // non-driver cycle members (the folds that contain the drivers'
    // output) must run at full effort.
    for name in ["scalar_mul-factor", "scalar_mul-one", "scalar_mul-compose"] {
        assert!(
            !analysis.throttled.iter().any(|n| n == name),
            "{name} is not a cycle driver and must run unthrottled"
        );
    }
    let schedule = backoff_schedule(&rewrites).expect("corpus has a generative cycle");
    for name in &analysis.throttled {
        assert!(schedule.is_throttled(name));
    }
    assert_eq!(schedule.len(), analysis.throttled.len());
}

#[test]
fn shipped_corpus_has_no_errors() {
    let rewrites = corpus();
    let analysis = analyze(&rewrites);
    // RL01 / RL05 are errors; the shipped corpus must be clean of both —
    // and the structural warnings RL03/RL04 too (warnings we ship are only
    // RL02 cycles and RL06 opaque dynamics, which are factual).
    for d in &analysis.report.diagnostics {
        assert!(
            d.code == codes::GENERATIVE_CYCLE || d.code == codes::OPAQUE_DYNAMIC,
            "unexpected corpus finding: {}",
            d.render(None)
        );
    }
    assert!(analysis.report.is_clean());
}

#[test]
fn json_is_stable_and_complete() {
    let rewrites = corpus();
    let analysis = analyze(&rewrites);
    let a = analysis.to_json();
    let b = analyze(&rewrites).to_json();
    assert_eq!(a, b, "analysis must be deterministic");
    for key in [
        "\"rules\":",
        "\"simplifying\":",
        "\"size_preserving\":",
        "\"generative\":",
        "\"opaque\":",
        "\"classes\":[",
        "\"cycles\":[",
        "\"throttled\":[",
        "\"report\":{",
    ] {
        assert!(a.contains(key), "missing {key} in {a:.120}");
    }
}

mod pattern_util {
    use crate::{alpha_eq, match_onto, op_count, substitute, unifiable, var_counts};
    use entangle_egraph::PatternAst;

    fn p(s: &str) -> PatternAst {
        s.parse::<entangle_egraph::Pattern>()
            .expect("pattern parses")
            .ast()
            .clone()
    }

    #[test]
    fn op_count_ignores_leaves() {
        assert_eq!(op_count(&p("?x")), 0);
        assert_eq!(op_count(&p("(add ?x (mul ?y ?z))")), 2);
    }

    #[test]
    fn var_counts_track_multiplicity() {
        let counts = var_counts(&p("(add (scalar_mul ?x ?n ?m) (scalar_mul ?y ?n ?m))"));
        assert_eq!(counts[&"?n".parse().unwrap()], 2);
        assert_eq!(counts[&"?x".parse().unwrap()], 1);
    }

    #[test]
    fn unification_is_syntactic_with_occurs_check() {
        assert!(unifiable(&p("(add ?a ?b)"), &p("(add (mul ?c ?d) ?e)")));
        assert!(!unifiable(&p("(add ?a ?a)"), &p("(add ?b (mul ?b ?c))")));
        assert!(!unifiable(&p("(add ?a ?b)"), &p("(mul ?a ?b)")));
    }

    #[test]
    fn matching_is_one_way() {
        let subst = match_onto(&p("(add ?a ?b)"), &p("(add (mul ?x ?y) ?z)"))
            .expect("general matches specific");
        assert_eq!(
            substitute(&p("(add ?b ?a)"), &subst),
            p("(add ?z (mul ?x ?y))")
        );
        assert!(match_onto(&p("(add ?a 1)"), &p("(add ?x ?y)")).is_none());
    }

    #[test]
    fn alpha_equivalence_is_joint() {
        assert!(alpha_eq(
            &[&p("(add ?a ?b)"), &p("(add ?b ?a)")],
            &[&p("(add ?x ?y)"), &p("(add ?y ?x)")]
        ));
        // Same sides individually, different variable linkage.
        assert!(!alpha_eq(
            &[&p("(add ?a ?b)"), &p("?a")],
            &[&p("(add ?x ?y)"), &p("?y")]
        ));
    }
}
