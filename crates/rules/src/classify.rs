//! Growth classification: what each rule does to term size and variable
//! multiplicity, read off the patterns alone.

use entangle_egraph::{PatternAst, Rewrite};
use entangle_lemmas::TensorAnalysis;

use crate::pattern_util::{op_count, var_counts};

/// Where a rule sits in the growth lattice.
///
/// The ordering is the scheduling contract: *simplifying* rules are never
/// throttled, *generative* rules in an interaction cycle are the backoff
/// candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum GrowthClass {
    /// RHS strictly smaller than LHS, no variable duplicated, nothing
    /// minted: applying it can only shrink extracted terms.
    Simplifying,
    /// Same operator count, no duplication, nothing minted (commutativity,
    /// associativity, operator swaps).
    SizePreserving,
    /// Adds operators, duplicates a variable, mints values the LHS does
    /// not bind, or is a dynamic applier without a static sketch.
    Generative,
}

impl GrowthClass {
    /// Stable lower-kebab name (JSON value / trace attribute).
    pub fn as_str(self) -> &'static str {
        match self {
            GrowthClass::Simplifying => "simplifying",
            GrowthClass::SizePreserving => "size-preserving",
            GrowthClass::Generative => "generative",
        }
    }
}

impl std::fmt::Display for GrowthClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The static classification of one rule.
#[derive(Debug, Clone)]
pub struct RuleClass {
    /// Rule name (registry lemma name).
    pub name: String,
    /// Growth class.
    pub class: GrowthClass,
    /// `true` when the rule carries a side condition.
    pub conditioned: bool,
    /// `true` when the right-hand side is a dynamic applier.
    pub dynamic: bool,
    /// `true` for a dynamic applier without an RHS sketch — invisible to
    /// every pattern-level pass (growth defaults to generative, the
    /// interaction graph gives it no out-edges).
    pub opaque: bool,
    /// `true` when the rule *expands* beyond its input structure: it
    /// duplicates an LHS variable or mints values the LHS does not bind.
    /// This — not mere operator-count growth — is the static blowup
    /// signature; structurally descending rules like `relu`-of-`concat`
    /// add an operator but recurse into strictly smaller arguments.
    pub expanding: bool,
    /// `true` when some LHS variable occurs more often in the RHS than in
    /// the LHS. Duplication is the *driver* criterion for generative
    /// cycles: each application multiplies the matched material, so a
    /// cycle through a duplicating rule re-feeds itself ever-larger terms.
    pub duplicating: bool,
    /// Operator applications in the LHS pattern.
    pub lhs_ops: usize,
    /// Operator applications in the effective RHS (`None` when opaque).
    pub rhs_ops: Option<usize>,
}

/// The effective right-hand side for static analysis: the real pattern
/// for universal/conditioned rules, the [`Rewrite::rhs_hint`] sketch for
/// hinted dynamic rules, `None` for opaque ones.
pub fn effective_rhs(rw: &Rewrite<TensorAnalysis>) -> Option<&entangle_egraph::Pattern> {
    rw.rhs().or_else(|| rw.rhs_hint())
}

/// Classifies one rule.
pub fn classify(rw: &Rewrite<TensorAnalysis>) -> RuleClass {
    let lhs: &PatternAst = rw.searcher().ast();
    let dynamic = rw.rhs().is_none();
    let lhs_ops = op_count(lhs);
    let Some(rhs) = effective_rhs(rw) else {
        return RuleClass {
            name: rw.name().to_owned(),
            class: GrowthClass::Generative,
            conditioned: rw.has_condition(),
            dynamic,
            opaque: true,
            expanding: true,
            duplicating: false,
            lhs_ops,
            rhs_ops: None,
        };
    };
    let rhs = rhs.ast();
    let rhs_ops = op_count(rhs);
    let lhs_vars = var_counts(lhs);
    let rhs_vars = var_counts(rhs);
    let duplicates = rhs_vars
        .iter()
        .any(|(v, &n)| n > lhs_vars.get(v).copied().unwrap_or(0) && lhs_vars.contains_key(v));
    let mints = rhs_vars.keys().any(|v| !lhs_vars.contains_key(v));
    let expanding = duplicates || mints;
    let class = if expanding || rhs_ops > lhs_ops {
        GrowthClass::Generative
    } else if rhs_ops == lhs_ops {
        GrowthClass::SizePreserving
    } else {
        GrowthClass::Simplifying
    };
    RuleClass {
        name: rw.name().to_owned(),
        class,
        conditioned: rw.has_condition(),
        dynamic,
        opaque: false,
        expanding,
        duplicating: duplicates,
        lhs_ops,
        rhs_ops: Some(rhs_ops),
    }
}
