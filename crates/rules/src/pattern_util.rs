//! Pure pattern-level algorithms the analyzer is built on: term size,
//! variable multiplicity, renaming, syntactic unification, one-way
//! matching, and α-equivalence — all over [`PatternAst`], no e-graph.

use std::collections::HashMap;

use entangle_egraph::{PatternAst, Var};

/// Number of operator *applications* in a pattern (nullary ops are tensor
/// leaves, not applications — the same convention as the corpus'
/// complexity metric).
pub fn op_count(ast: &PatternAst) -> usize {
    match ast {
        PatternAst::Op(_, ch) if !ch.is_empty() => 1 + ch.iter().map(op_count).sum::<usize>(),
        _ => 0,
    }
}

/// Occurrence count of every variable in the pattern.
pub fn var_counts(ast: &PatternAst) -> HashMap<Var, usize> {
    fn walk(ast: &PatternAst, out: &mut HashMap<Var, usize>) {
        match ast {
            PatternAst::Var(v) => *out.entry(*v).or_insert(0) += 1,
            PatternAst::Int(_) => {}
            PatternAst::Op(_, ch) => ch.iter().for_each(|c| walk(c, out)),
        }
    }
    let mut out = HashMap::new();
    walk(ast, &mut out);
    out
}

/// Renames every variable by appending `suffix`, so two rules' patterns
/// can be unified without accidental capture.
pub fn rename_vars(ast: &PatternAst, suffix: &str) -> PatternAst {
    match ast {
        PatternAst::Var(v) => PatternAst::Var(Var::new(&format!("{}{suffix}", v.as_str()))),
        PatternAst::Int(i) => PatternAst::Int(*i),
        PatternAst::Op(sym, ch) => {
            PatternAst::Op(*sym, ch.iter().map(|c| rename_vars(c, suffix)).collect())
        }
    }
}

/// Every operator-application subterm of the pattern (the pattern itself
/// included when it is one), in pre-order.
pub fn op_subterms(ast: &PatternAst) -> Vec<&PatternAst> {
    fn walk<'a>(ast: &'a PatternAst, out: &mut Vec<&'a PatternAst>) {
        if let PatternAst::Op(_, ch) = ast {
            if !ch.is_empty() {
                out.push(ast);
            }
            ch.iter().for_each(|c| walk(c, out));
        }
    }
    let mut out = Vec::new();
    walk(ast, &mut out);
    out
}

/// Applies a substitution, leaving unbound variables in place.
fn apply(ast: &PatternAst, subst: &HashMap<Var, PatternAst>) -> PatternAst {
    match ast {
        PatternAst::Var(v) => match subst.get(v) {
            Some(t) => apply(t, subst),
            None => ast.clone(),
        },
        PatternAst::Int(i) => PatternAst::Int(*i),
        PatternAst::Op(sym, ch) => {
            PatternAst::Op(*sym, ch.iter().map(|c| apply(c, subst)).collect())
        }
    }
}

fn occurs(v: Var, ast: &PatternAst, subst: &HashMap<Var, PatternAst>) -> bool {
    match ast {
        PatternAst::Var(w) => *w == v || subst.get(w).is_some_and(|t| occurs(v, t, subst)),
        PatternAst::Int(_) => false,
        PatternAst::Op(_, ch) => ch.iter().any(|c| occurs(v, c, subst)),
    }
}

fn resolve<'a>(mut ast: &'a PatternAst, subst: &'a HashMap<Var, PatternAst>) -> &'a PatternAst {
    while let PatternAst::Var(v) = ast {
        match subst.get(v) {
            Some(t) => ast = t,
            None => break,
        }
    }
    ast
}

fn unify_into(a: &PatternAst, b: &PatternAst, subst: &mut HashMap<Var, PatternAst>) -> bool {
    let a = resolve(a, subst).clone();
    let b = resolve(b, subst).clone();
    match (&a, &b) {
        (PatternAst::Var(v), PatternAst::Var(w)) if v == w => true,
        (PatternAst::Var(v), t) | (t, PatternAst::Var(v)) => {
            if occurs(*v, t, subst) {
                return false;
            }
            subst.insert(*v, (*t).clone());
            true
        }
        (PatternAst::Int(i), PatternAst::Int(j)) => i == j,
        (PatternAst::Op(s1, c1), PatternAst::Op(s2, c2)) => {
            s1 == s2
                && c1.len() == c2.len()
                && c1.iter().zip(c2).all(|(x, y)| unify_into(x, y, subst))
        }
        _ => false,
    }
}

/// Syntactic unification with occurs check. The caller is responsible for
/// renaming apart (see [`rename_vars`]); variables shared between `a` and
/// `b` are treated as the same variable.
pub fn unifiable(a: &PatternAst, b: &PatternAst) -> bool {
    let mut subst = HashMap::new();
    unify_into(a, b, &mut subst)
}

/// One-way matching: binds variables of `general` (only) so that it equals
/// `specific`; `specific`'s variables are treated as constants. Returns
/// the substitution when `specific` is an instance of `general`.
pub fn match_onto(general: &PatternAst, specific: &PatternAst) -> Option<HashMap<Var, PatternAst>> {
    fn go(g: &PatternAst, s: &PatternAst, subst: &mut HashMap<Var, PatternAst>) -> bool {
        match g {
            PatternAst::Var(v) => match subst.get(v) {
                Some(bound) => bound == s,
                None => {
                    subst.insert(*v, s.clone());
                    true
                }
            },
            PatternAst::Int(i) => matches!(s, PatternAst::Int(j) if i == j),
            PatternAst::Op(sym, ch) => match s {
                PatternAst::Op(ssym, sch) => {
                    sym == ssym
                        && ch.len() == sch.len()
                        && ch.iter().zip(sch).all(|(x, y)| go(x, y, subst))
                }
                _ => false,
            },
        }
    }
    let mut subst = HashMap::new();
    go(general, specific, &mut subst).then_some(subst)
}

/// Canonical variable numbering (`?v0`, `?v1`, … in first-occurrence
/// order) over a *sequence* of patterns, so a rule's two sides share one
/// renaming.
fn canonicalize(asts: &[&PatternAst]) -> Vec<PatternAst> {
    fn walk(ast: &PatternAst, map: &mut HashMap<Var, Var>) -> PatternAst {
        match ast {
            PatternAst::Var(v) => {
                let n = map.len();
                let c = *map.entry(*v).or_insert_with(|| Var::new(&format!("v{n}")));
                PatternAst::Var(c)
            }
            PatternAst::Int(i) => PatternAst::Int(*i),
            PatternAst::Op(sym, ch) => {
                PatternAst::Op(*sym, ch.iter().map(|c| walk(c, map)).collect())
            }
        }
    }
    let mut map = HashMap::new();
    asts.iter().map(|a| walk(a, &mut map)).collect()
}

/// α-equivalence of two pattern sequences under a single consistent
/// renaming each (used on `[lhs, rhs]` pairs to detect duplicate rules).
pub fn alpha_eq(a: &[&PatternAst], b: &[&PatternAst]) -> bool {
    canonicalize(a) == canonicalize(b)
}

/// Instantiates `general`'s substitution into its right-hand side — used
/// by the subsumption check to verify that the more specific rule's RHS is
/// exactly what the general rule would have produced.
pub fn substitute(ast: &PatternAst, subst: &HashMap<Var, PatternAst>) -> PatternAst {
    apply(ast, subst)
}
