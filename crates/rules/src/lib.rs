//! Static analysis of the rewrite corpus — no e-graph, no saturation.
//!
//! The corpus is the checker's trusted input: every verdict rests on the
//! lemmas being sound and the saturation loop terminating in budget. This
//! crate reads the rule *patterns* alone and derives:
//!
//! 1. **Growth classification** ([`classify`]) — every rule is
//!    *simplifying*, *size-preserving*, or *generative*, from LHS→RHS
//!    operator counts and variable multiplicity.
//! 2. **Rule-interaction cycles** ([`interaction_graph`],
//!    [`generative_cycles`]) — `A → B` when `A`'s output can trigger `B`;
//!    a strongly connected component driven by an unconditioned,
//!    variable-duplicating rule is a static blowup signature (the
//!    `scalar_mul-distribute` ⇄ `scalar_mul-compose` pair the MoE traces
//!    measure dynamically).
//! 3. **Overlap, subsumption, and dead rules** — duplicate rules,
//!    rules another rule already implies, patterns naming operators
//!    outside the vocabulary.
//! 4. **Shape/dtype soundness** ([`shape_findings`]) — both sides of
//!    every unconditioned pattern rule re-derived over a ground palette
//!    through the same inference the e-graph analysis runs.
//!
//! Findings surface as `RL01`–`RL06` diagnostics through the
//! [`entangle_lint`] machinery (the `entangle rules` subcommand), and the
//! classification is *consumed*: [`backoff_schedule`] turns generative
//! cycles into the saturation backoff schedule
//! ([`entangle_egraph::BackoffSchedule`]) that throttles the cycle
//! *drivers* while leaving every other rule untouched.

#![forbid(unsafe_code)]

mod classify;
mod interact;
mod pattern_util;
mod soundness;

use std::collections::{BTreeSet, HashMap};
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::{Mutex, OnceLock};

use entangle_egraph::{BackoffSchedule, Rewrite};
use entangle_lemmas::{TensorAnalysis, OP_VOCABULARY};
use entangle_lint::{json_str, Anchor, Diagnostic, LintReport};

pub use classify::{classify, effective_rhs, GrowthClass, RuleClass};
pub use interact::{generative_cycles, interaction_graph, GenerativeCycle, InteractionGraph};
pub use pattern_util::{
    alpha_eq, match_onto, op_count, op_subterms, substitute, unifiable, var_counts,
};
pub use soundness::{shape_findings, ShapeFinding};

/// Diagnostic codes for the rule-corpus analyzer (`RL` = rule lint).
pub mod codes {
    /// Error: a pattern names an operator outside the vocabulary — the
    /// rule can never fire (or worse, fires only on leaves it mistakes
    /// for operators).
    pub const DEAD_RULE: &str = "RL01";
    /// Warning: the rule belongs to a generative interaction cycle — an
    /// unconditioned duplicating rule feeds a loop back into itself.
    pub const GENERATIVE_CYCLE: &str = "RL02";
    /// Warning: two rules are α-equivalent — one is redundant.
    pub const DUPLICATE_RULE: &str = "RL03";
    /// Warning: a more general rule already implies this one.
    pub const SUBSUMED_RULE: &str = "RL04";
    /// Error: the two sides derive different shapes or dtypes on a
    /// ground instantiation — applying the rule would corrupt the
    /// analysis.
    pub const SHAPE_MISMATCH: &str = "RL05";
    /// Warning: a dynamic rule without an RHS sketch is invisible to the
    /// interaction graph and defaults to *generative*.
    pub const OPAQUE_DYNAMIC: &str = "RL06";
}

/// The complete result of a corpus analysis.
#[derive(Debug)]
pub struct RuleAnalysis {
    /// Per-rule classification, in corpus order.
    pub classes: Vec<RuleClass>,
    /// The interaction graph the cycles were found in.
    pub graph: InteractionGraph,
    /// Every generative cycle (indices into `classes`).
    pub cycles: Vec<GenerativeCycle>,
    /// Names of the rules the backoff scheduler throttles: the drivers of
    /// every generative cycle. Sorted.
    pub throttled: Vec<String>,
    /// RL01–RL06 findings.
    pub report: LintReport,
}

impl RuleAnalysis {
    /// Number of rules in the given growth class.
    pub fn count(&self, class: GrowthClass) -> usize {
        self.classes.iter().filter(|c| c.class == class).count()
    }

    /// The backoff schedule this analysis implies (`None` when nothing
    /// needs throttling).
    pub fn backoff(&self) -> Option<BackoffSchedule> {
        if self.throttled.is_empty() {
            None
        } else {
            Some(BackoffSchedule::new(self.throttled.iter().cloned()))
        }
    }

    /// Renders the analysis as a JSON object with a stable field order:
    /// `rules`, `simplifying`, `size_preserving`, `generative`, `opaque`,
    /// `classes` (array of per-rule objects, corpus order, each with
    /// `name`, `class`, `conditioned`, `dynamic`, `opaque`, `expanding`,
    /// `lhs_ops`, `rhs_ops`), `cycles` (array of `{drivers, members}` by
    /// rule name), `throttled`, `report` (the standard lint-report
    /// object).
    pub fn to_json(&self) -> String {
        let classes: Vec<String> = self
            .classes
            .iter()
            .map(|c| {
                let rhs_ops = match c.rhs_ops {
                    Some(n) => n.to_string(),
                    None => "null".to_owned(),
                };
                format!(
                    "{{\"name\":{},\"class\":{},\"conditioned\":{},\"dynamic\":{},\"opaque\":{},\"expanding\":{},\"lhs_ops\":{},\"rhs_ops\":{}}}",
                    json_str(&c.name),
                    json_str(c.class.as_str()),
                    c.conditioned,
                    c.dynamic,
                    c.opaque,
                    c.expanding,
                    c.lhs_ops,
                    rhs_ops
                )
            })
            .collect();
        let cycles: Vec<String> = self
            .cycles
            .iter()
            .map(|cy| {
                let names = |ix: &[usize]| {
                    ix.iter()
                        .map(|&i| json_str(&self.classes[i].name))
                        .collect::<Vec<_>>()
                        .join(",")
                };
                format!(
                    "{{\"drivers\":[{}],\"members\":[{}]}}",
                    names(&cy.drivers),
                    names(&cy.members)
                )
            })
            .collect();
        let throttled: Vec<String> = self.throttled.iter().map(|n| json_str(n)).collect();
        format!(
            "{{\"rules\":{},\"simplifying\":{},\"size_preserving\":{},\"generative\":{},\"opaque\":{},\"classes\":[{}],\"cycles\":[{}],\"throttled\":[{}],\"report\":{}}}",
            self.classes.len(),
            self.count(GrowthClass::Simplifying),
            self.count(GrowthClass::SizePreserving),
            self.count(GrowthClass::Generative),
            self.classes.iter().filter(|c| c.opaque).count(),
            classes.join(","),
            cycles.join(","),
            throttled.join(","),
            self.report.to_json(None)
        )
    }

    /// Renders a human-readable summary: class counts, cycles, the
    /// throttle set, then every diagnostic.
    pub fn render(&self) -> String {
        let mut out = format!(
            "rules    : {} ({} simplifying, {} size-preserving, {} generative, {} opaque)\n",
            self.classes.len(),
            self.count(GrowthClass::Simplifying),
            self.count(GrowthClass::SizePreserving),
            self.count(GrowthClass::Generative),
            self.classes.iter().filter(|c| c.opaque).count(),
        );
        if self.cycles.is_empty() {
            out.push_str("cycles   : none\n");
        }
        for cy in &self.cycles {
            let drivers = cy
                .drivers
                .iter()
                .map(|&i| self.classes[i].name.as_str())
                .collect::<Vec<_>>()
                .join(", ");
            let mut members: Vec<&str> = cy
                .members
                .iter()
                .take(8)
                .map(|&i| self.classes[i].name.as_str())
                .collect();
            if cy.members.len() > members.len() {
                members.push("…");
            }
            out.push_str(&format!(
                "cycle    : {} rules; drivers [{drivers}]; members [{}] (full list in --json)\n",
                cy.members.len(),
                members.join(", ")
            ));
        }
        out.push_str(&format!(
            "throttled: {}\n",
            if self.throttled.is_empty() {
                "none".to_owned()
            } else {
                self.throttled.join(", ")
            }
        ));
        out.push_str(&self.report.summary());
        if !self.report.diagnostics.is_empty() {
            out.push('\n');
            out.push_str(&self.report.render(None));
        }
        out
    }
}

/// Non-leaf operator symbols a pattern applies, in pre-order.
fn pattern_op_names(ast: &entangle_egraph::PatternAst, out: &mut BTreeSet<String>) {
    if let entangle_egraph::PatternAst::Op(sym, ch) = ast {
        if !ch.is_empty() {
            out.insert(sym.as_str().to_owned());
            ch.iter().for_each(|c| pattern_op_names(c, out));
        }
    }
}

/// Runs every pass over a rewrite slice.
pub fn analyze(rewrites: &[Rewrite<TensorAnalysis>]) -> RuleAnalysis {
    let classes: Vec<RuleClass> = rewrites.iter().map(classify).collect();
    let graph = interaction_graph(rewrites);
    let cycles = generative_cycles(&graph, &classes);
    let mut diagnostics: Vec<Diagnostic> = Vec::new();

    // RL01: dead rules — pattern operators outside the vocabulary.
    for (rw, class) in rewrites.iter().zip(&classes) {
        let mut ops = BTreeSet::new();
        pattern_op_names(rw.searcher().ast(), &mut ops);
        if let Some(rhs) = effective_rhs(rw) {
            pattern_op_names(rhs.ast(), &mut ops);
        }
        let unknown: Vec<String> = ops
            .into_iter()
            .filter(|o| !OP_VOCABULARY.contains(&o.as_str()))
            .collect();
        if !unknown.is_empty() {
            diagnostics.push(
                Diagnostic::error(
                    codes::DEAD_RULE,
                    Anchor::Lemma(class.name.clone()),
                    format!(
                        "pattern applies operators outside the vocabulary: {}",
                        unknown.join(", ")
                    ),
                )
                .with_suggestion("fix the operator name or extend decode_op / OP_VOCABULARY"),
            );
        }
    }

    // RL02: generative cycles — one diagnostic per cycle, anchored at the
    // lowest-index driver. The message stays bounded (drivers + member
    // count); full membership is in the `cycles` section of the report.
    for cy in &cycles {
        let drivers = cy
            .drivers
            .iter()
            .map(|&i| classes[i].name.as_str())
            .collect::<Vec<_>>()
            .join(", ");
        diagnostics.push(
            Diagnostic::warning(
                codes::GENERATIVE_CYCLE,
                Anchor::Lemma(classes[cy.drivers[0]].name.clone()),
                format!(
                    "generative interaction cycle: {} rules fed by duplicating drivers [{drivers}]",
                    cy.members.len()
                ),
            )
            .with_suggestion("the drivers are match-budget throttled by the backoff scheduler"),
        );
    }

    // RL03 (duplicates) and RL04 (subsumption) over unconditioned pattern
    // rules. A duplicate pair is reported once (at the later rule) and
    // excluded from subsumption, which it would trivially satisfy.
    let candidate =
        |i: usize| -> Option<(&entangle_egraph::PatternAst, &entangle_egraph::PatternAst)> {
            let rw = &rewrites[i];
            if rw.has_condition() {
                return None;
            }
            Some((rw.searcher().ast(), rw.rhs()?.ast()))
        };
    for j in 0..rewrites.len() {
        let Some((lj, rj)) = candidate(j) else {
            continue;
        };
        for i in 0..j {
            let Some((li, ri)) = candidate(i) else {
                continue;
            };
            if alpha_eq(&[li, ri], &[lj, rj]) {
                diagnostics.push(
                    Diagnostic::warning(
                        codes::DUPLICATE_RULE,
                        Anchor::Lemma(classes[j].name.clone()),
                        format!("duplicate of {:?} (α-equivalent sides)", classes[i].name),
                    )
                    .with_suggestion("delete one of the two rules"),
                );
            }
        }
    }
    for j in 0..rewrites.len() {
        let Some((lj, rj)) = candidate(j) else {
            continue;
        };
        for i in 0..rewrites.len() {
            if i == j {
                continue;
            }
            let Some((li, ri)) = candidate(i) else {
                continue;
            };
            if alpha_eq(&[li, ri], &[lj, rj]) {
                continue; // already RL03
            }
            if let Some(subst) = match_onto(li, lj) {
                if &substitute(ri, &subst) == rj {
                    diagnostics.push(
                        Diagnostic::warning(
                            codes::SUBSUMED_RULE,
                            Anchor::Lemma(classes[j].name.clone()),
                            format!("subsumed by the more general {:?}", classes[i].name),
                        )
                        .with_suggestion(
                            "delete the specific rule unless it exists for match-cost reasons",
                        ),
                    );
                }
            }
        }
    }

    // RL05: shape/dtype soundness over the ground palette.
    for f in shape_findings(rewrites) {
        diagnostics.push(
            Diagnostic::error(
                codes::SHAPE_MISMATCH,
                Anchor::Lemma(classes[f.rule].name.clone()),
                format!(
                    "sides derive different metadata under {}: lhs {} vs rhs {}",
                    f.binding, f.lhs, f.rhs
                ),
            )
            .with_suggestion(
                "the rewrite is unsound for these shapes — add a condition or fix the RHS",
            ),
        );
    }

    // RL06: opaque dynamic rules.
    for class in &classes {
        if class.opaque {
            diagnostics.push(
                Diagnostic::warning(
                    codes::OPAQUE_DYNAMIC,
                    Anchor::Lemma(class.name.clone()),
                    "dynamic rule without an rhs_hint: growth defaults to generative and the interaction graph cannot see its output".to_owned(),
                )
                .with_suggestion("add .with_rhs_hint(..) sketching the applier's output"),
            );
        }
    }

    let throttled: Vec<String> = throttle_set(&classes, &cycles).into_iter().collect();

    RuleAnalysis {
        classes,
        graph,
        cycles,
        throttled,
        report: LintReport { diagnostics },
    }
}

/// The rules the backoff scheduler throttles: the *drivers* of every
/// generative cycle — unconditioned, variable-duplicating rules whose
/// output feeds back into the cycle. Only drivers mint new copies of
/// subterms; the rest of the cycle (compose/normalize-style folds and
/// size-preserving shuffles) is what keeps the drivers' output *bounded*,
/// so throttling it amplifies blowup instead of damping it. Measured on
/// the MoE/TP-SP2 pair: throttling all non-simplifying members regresses
/// end-to-end time ~5×, throttling drivers alone wins.
fn throttle_set(classes: &[RuleClass], cycles: &[GenerativeCycle]) -> BTreeSet<String> {
    let mut set = BTreeSet::new();
    for cy in cycles {
        for &i in &cy.drivers {
            set.insert(classes[i].name.clone());
        }
    }
    set
}

/// Derives the saturation backoff schedule for a rewrite slice: the
/// classification and cycle passes only (the lint passes are skipped), so
/// this is cheap enough to run once per check.
///
/// Generative-cycle *drivers* are throttled with the default match budget
/// and ban length; every other rule — including the simplifying and
/// size-preserving cycle members that fold the drivers' output back down —
/// runs unthrottled (see [`throttle_set`]).
pub fn backoff_schedule(rewrites: &[Rewrite<TensorAnalysis>]) -> Option<BackoffSchedule> {
    // The schedule depends only on the rule list; the registry rejects
    // duplicate names, so the ordered name sequence identifies it. Memoize
    // process-wide: parallel sweeps re-derive per check otherwise.
    static CACHE: OnceLock<Mutex<HashMap<u64, Option<BackoffSchedule>>>> = OnceLock::new();
    let key = {
        let mut h = DefaultHasher::new();
        for rw in rewrites {
            rw.name().hash(&mut h);
        }
        h.finish()
    };
    let cache = CACHE.get_or_init(Mutex::default);
    if let Some(hit) = cache.lock().expect("schedule cache poisoned").get(&key) {
        return hit.clone();
    }
    let classes: Vec<RuleClass> = rewrites.iter().map(classify).collect();
    let graph = interaction_graph(rewrites);
    let cycles = generative_cycles(&graph, &classes);
    let set = throttle_set(&classes, &cycles);
    let schedule = if set.is_empty() {
        None
    } else {
        Some(BackoffSchedule::new(set))
    };
    cache
        .lock()
        .expect("schedule cache poisoned")
        .insert(key, schedule.clone());
    schedule
}

#[cfg(test)]
mod tests;
