//! Canonical-form stability: the template partition must not depend on
//! node order or on leaf (graph-input) names — those are exactly the
//! quantities the fingerprint parameterizes away.

use std::collections::BTreeSet;

use entangle_ir::{Graph, NodeId, Tensor};
use entangle_iso::analyze;
use entangle_models::{llama3, moe, ModelConfig, MoeConfig};
use entangle_parallel::{parallelize_moe, Strategy};
use proptest::prelude::*;

/// The partition as a canonical value: the set of member-name sets.
fn partition(g: &Graph) -> BTreeSet<BTreeSet<String>> {
    analyze(g)
        .classes
        .iter()
        .map(|c| {
            c.members
                .iter()
                .map(|&m| g.nodes()[m].name.clone())
                .collect()
        })
        .collect()
}

/// Rebuilds `g` with its node list permuted (ids renumbered, producer
/// links rewritten) — semantically the same graph.
fn permute_nodes(g: &Graph, keys: &[u64]) -> Graph {
    let n = g.nodes().len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (keys[i % keys.len().max(1)], i));
    let mut new_id_of_old = vec![0u32; n];
    for (new, &old) in order.iter().enumerate() {
        new_id_of_old[old] = new as u32;
    }
    let nodes = order
        .iter()
        .enumerate()
        .map(|(new, &old)| {
            let mut node = g.nodes()[old].clone();
            node.id = NodeId(new as u32);
            node
        })
        .collect();
    let tensors = g
        .tensors()
        .iter()
        .map(|t| {
            let mut t = t.clone();
            t.producer = t.producer.map(|p| NodeId(new_id_of_old[p.0 as usize]));
            t
        })
        .collect();
    Graph::from_parts_unchecked(
        g.name().to_owned(),
        tensors,
        nodes,
        g.inputs().to_vec(),
        g.outputs().to_vec(),
    )
}

/// Rebuilds `g` with every graph-input tensor renamed to `p{i}`.
fn rename_leaves(g: &Graph) -> Graph {
    let tensors: Vec<Tensor> = g
        .tensors()
        .iter()
        .map(|t| {
            let mut t = t.clone();
            if t.producer.is_none() {
                t.name = format!("p{}", t.id.0);
            }
            t
        })
        .collect();
    Graph::from_parts_unchecked(
        g.name().to_owned(),
        tensors,
        g.nodes().to_vec(),
        g.inputs().to_vec(),
        g.outputs().to_vec(),
    )
}

fn subjects() -> Vec<Graph> {
    let llama = llama3(&ModelConfig::tiny().with_layers(2));
    let moe_gs = moe(&MoeConfig::tiny());
    let moe_gd = parallelize_moe(&MoeConfig::tiny(), &Strategy::tp_sp(2)).graph;
    vec![llama, moe_gs, moe_gd]
}

#[test]
fn partition_is_invariant_under_leaf_renaming() {
    for g in subjects() {
        assert_eq!(
            partition(&g),
            partition(&rename_leaves(&g)),
            "leaf renaming changed the partition of {}",
            g.name()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn partition_is_invariant_under_node_reordering(
        keys in proptest::collection::vec(0u64..1_000_000, 8..32),
    ) {
        for g in subjects() {
            let permuted = permute_nodes(&g, &keys);
            prop_assert_eq!(
                partition(&g),
                partition(&permuted),
                "node reordering changed the partition of {}",
                g.name()
            );
        }
    }
}
