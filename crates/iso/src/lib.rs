//! Static graph-template analysis.
//!
//! Production captures repeat structure wholesale: the 31 identical layers
//! of a 32-layer transformer, the N experts of an MoE block. This crate
//! finds that repetition *before any saturation runs* by canonicalizing
//! each operator's producer-side neighborhood into a bounded-depth
//! fingerprint — leaf names dropped, symbolic dims masked, integer slice
//! bounds parameterized, exactly the quantities `entangle-par`'s `Renamer`
//! abstracts per-operator, generalized to a per-subgraph form — and
//! partitioning the graph into maximal repeated template classes.
//!
//! The partition is consumed two ways:
//!
//! * the checker schedules one *representative* per class and lifts the
//!   saturation memo from per-operator to per-template keys (bounds become
//!   `$b{i}` placeholders, results re-validated by the certificate kernel
//!   after substitution), and
//! * template consistency is reported as `IS##` diagnostics through the
//!   `entangle-lint` machinery (`entangle iso`, exit code 6 on errors).
//!
//! The canonical form deliberately looks only *upstream* (the producer
//! cone, ordered by operator inputs): the per-operator mapping problem the
//! checker memoizes is a function of the operator and its inputs' mapping
//! history, never of downstream consumers. Ordered traversal also gives a
//! deterministic leaf/bound sequence, so two members of a class align
//! positionally without any sort-tie ambiguity.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt::Write as _;

use entangle_ir::{Graph, Node, Op, Tensor, TensorId};
use entangle_lint::{json_str, Anchor, Diagnostic, LintReport};

/// Stable diagnostic codes for template-consistency findings.
pub mod codes {
    /// Fingerprint collision: two operators hash alike but their canonical
    /// forms differ (defensive; the partition itself groups by full form).
    pub const IS01: &str = "IS01";
    /// Near-miss template: an operator matches a repeated class on relaxed
    /// structure (op names and arity) but not on attributes or shapes —
    /// the shape a one-expert-out-of-step bug takes.
    pub const IS02: &str = "IS02";
    /// Non-bijective leaf alignment: a class member's parameter leaves do
    /// not align one-to-one with the representative's (e.g. tied weights in
    /// one instance, distinct weights in another), so the template is
    /// weaker than its fingerprint suggests.
    pub const IS03: &str = "IS03";
}

/// Default neighborhood radius (producer hops visible from an operator's
/// inputs before the cone is cut into parameter leaves).
pub const DEFAULT_RADIUS: usize = 2;

/// One maximal repeated template class: two or more operators whose
/// canonical neighborhood forms are identical.
#[derive(Debug, Clone)]
pub struct TemplateClass {
    /// Dense class id (index into [`IsoAnalysis::classes`]).
    pub id: usize,
    /// 64-bit FNV-1a fingerprint of the canonical form (display only; the
    /// partition groups by the full form string).
    pub fingerprint: u64,
    /// Operator name shared by every member.
    pub op: String,
    /// Member node indices in `graph.nodes()` order, ascending. The first
    /// entry is the class representative.
    pub members: Vec<usize>,
}

impl TemplateClass {
    /// The representative member: the smallest node index, i.e. the first
    /// member the checker's index-ordered scheduler reaches.
    pub fn representative(&self) -> usize {
        self.members[0]
    }
}

/// The result of analyzing one graph: the template partition plus
/// consistency diagnostics.
#[derive(Debug, Clone)]
pub struct IsoAnalysis {
    /// The radius the forms were built at.
    pub radius: usize,
    /// Total operator count in the graph.
    pub operators: usize,
    /// Repeated classes (≥ 2 members), ordered by representative index.
    pub classes: Vec<TemplateClass>,
    /// Template-consistency findings (`IS##`).
    pub report: LintReport,
    /// `node index → class id` for nodes in a repeated class.
    class_of: HashMap<usize, usize>,
}

impl IsoAnalysis {
    /// The class containing node index `idx`, if it is in a repeated class.
    pub fn class_of(&self, idx: usize) -> Option<&TemplateClass> {
        self.class_of.get(&idx).map(|&c| &self.classes[c])
    }

    /// Number of repeated template classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Member count of the largest class (0 when there is none).
    pub fn largest_class(&self) -> usize {
        self.classes
            .iter()
            .map(|c| c.members.len())
            .max()
            .unwrap_or(0)
    }

    /// Number of operators belonging to some repeated class.
    pub fn covered(&self) -> usize {
        self.class_of.len()
    }

    /// Fraction of operators in a repeated class, in percent.
    pub fn coverage_percent(&self) -> f64 {
        if self.operators == 0 {
            0.0
        } else {
            100.0 * self.covered() as f64 / self.operators as f64
        }
    }

    /// One-line summary, the shape `entangle info` prints.
    pub fn summary(&self) -> String {
        format!(
            "{} template classes, largest {}, {}/{} operators covered ({:.1}%)",
            self.class_count(),
            self.largest_class(),
            self.covered(),
            self.operators,
            self.coverage_percent()
        )
    }

    /// Stable-field-order JSON rendering of the partition and diagnostics.
    pub fn to_json(&self, graph: &Graph) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"version\":1,\"graph\":{},\"radius\":{},\"operators\":{},",
            json_str(graph.name()),
            self.radius,
            self.operators
        );
        out.push_str("\"classes\":[");
        for (i, c) in self.classes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"id\":{},\"fingerprint\":\"{:016x}\",\"op\":{},\"size\":{},\"representative\":{},\"members\":[",
                c.id,
                c.fingerprint,
                json_str(&c.op),
                c.members.len(),
                json_str(&graph.nodes()[c.representative()].name),
            );
            for (j, &m) in c.members.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&json_str(&graph.nodes()[m].name));
            }
            out.push_str("]}");
        }
        let _ = write!(
            out,
            "],\"coverage\":{{\"covered\":{},\"total\":{},\"percent\":{:.1}}},",
            self.covered(),
            self.operators,
            self.coverage_percent()
        );
        out.push_str("\"diagnostics\":[");
        for (i, d) in self.report.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&d.to_json(Some(graph)));
        }
        out.push_str("]}");
        out
    }
}

/// Analyzes `g` at [`DEFAULT_RADIUS`].
pub fn analyze(g: &Graph) -> IsoAnalysis {
    analyze_with(g, DEFAULT_RADIUS)
}

/// Analyzes `g` with an explicit neighborhood radius.
pub fn analyze_with(g: &Graph, radius: usize) -> IsoAnalysis {
    let forms: Vec<NodeForm> = g.nodes().iter().map(|n| node_form(g, n, radius)).collect();

    // Group by the full canonical form (BTreeMap: deterministic iteration).
    let mut by_form: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (idx, f) in forms.iter().enumerate() {
        by_form.entry(&f.strict).or_default().push(idx);
    }

    let mut report = LintReport::default();

    // IS01 — defensive fingerprint-collision check. Grouping is by the full
    // form string, so a collision cannot corrupt the partition; it is still
    // worth surfacing because the fingerprint is what tooling displays.
    let mut by_fp: HashMap<u64, &str> = HashMap::new();
    for (form, members) in &by_form {
        let fp = fnv1a(form);
        if let Some(other) = by_fp.insert(fp, form) {
            if other != *form {
                let node = &g.nodes()[members[0]];
                report.diagnostics.push(Diagnostic::error(
                    codes::IS01,
                    Anchor::Node(node.id),
                    format!(
                        "canonical-form fingerprint {fp:016x} collides with a \
                         structurally different operator group"
                    ),
                ));
            }
        }
    }

    // Repeated classes, ordered by representative (= smallest member) index.
    let mut classes: Vec<TemplateClass> = Vec::new();
    let mut class_of: HashMap<usize, usize> = HashMap::new();
    let mut groups: Vec<(&str, &Vec<usize>)> = by_form
        .iter()
        .filter(|(_, m)| m.len() >= 2)
        .map(|(f, m)| (*f, m))
        .collect();
    groups.sort_by_key(|(_, m)| m[0]);
    for (form, members) in groups {
        let id = classes.len();
        for &m in members {
            class_of.insert(m, id);
        }
        classes.push(TemplateClass {
            id,
            fingerprint: fnv1a(form),
            op: g.nodes()[members[0]].op.name().to_owned(),
            members: members.clone(),
        });
    }

    // IS02 — singletons that match a repeated class on relaxed structure
    // (operator names and arity only) but not on the strict form: the
    // near-miss shape of a one-instance-out-of-step bug.
    let mut relaxed_class: HashMap<&str, usize> = HashMap::new();
    for c in &classes {
        relaxed_class
            .entry(&forms[c.representative()].relaxed)
            .or_insert(c.id);
    }
    for (idx, f) in forms.iter().enumerate() {
        if class_of.contains_key(&idx) {
            continue;
        }
        if let Some(&cid) = relaxed_class.get(f.relaxed.as_str()) {
            let rep = &g.nodes()[classes[cid].representative()];
            let node = &g.nodes()[idx];
            report.diagnostics.push(
                Diagnostic::warning(
                    codes::IS02,
                    Anchor::Node(node.id),
                    format!(
                        "operator matches template class #{cid} (representative \
                         `{}`) on structure but not on attributes or shapes",
                        rep.name
                    ),
                )
                .with_suggestion(
                    "check this instance's attributes (slice dims, scales) against \
                     the repeated template it almost matches",
                ),
            );
        }
    }

    // IS03 — leaf alignment inside each class must be a bijection against
    // the representative; equal forms guarantee equal leaf *signatures* but
    // not distinctness (tied weights in one instance, distinct in another).
    for c in &classes {
        let rep = &forms[c.representative()];
        for &m in &c.members[1..] {
            let mem = &forms[m];
            if !bijective(&rep.leaves, &mem.leaves) {
                let node = &g.nodes()[m];
                report.diagnostics.push(Diagnostic::warning(
                    codes::IS03,
                    Anchor::Node(node.id),
                    format!(
                        "parameter leaves do not align one-to-one with template \
                         representative `{}` (tied vs distinct leaves); the \
                         template is weaker than its fingerprint suggests",
                        g.nodes()[c.representative()].name
                    ),
                ));
            }
        }
    }

    IsoAnalysis {
        radius,
        operators: g.nodes().len(),
        classes,
        report,
        class_of,
    }
}

/// The canonical forms and alignment sequences of one operator.
struct NodeForm {
    /// Strict form: op attrs kept (slice bounds masked), shapes masked to
    /// concrete-or-`~`, leaf names dropped.
    strict: String,
    /// Relaxed form: operator names and arity only.
    relaxed: String,
    /// Parameter leaves (graph inputs and cut interior tensors) in
    /// deterministic traversal order.
    leaves: Vec<TensorId>,
}

fn node_form(g: &Graph, n: &Node, radius: usize) -> NodeForm {
    let mut f = NodeForm {
        strict: String::new(),
        relaxed: String::new(),
        leaves: Vec::new(),
    };
    f.strict.push('(');
    f.relaxed.push('(');
    op_sig(n, &mut f);
    for &t in &n.inputs {
        f.strict.push(' ');
        f.relaxed.push(' ');
        tensor_form(g, t, radius, &mut f);
    }
    f.strict.push(')');
    f.relaxed.push(')');
    let out = g.tensor(n.output);
    let _ = write!(f.strict, "->{}:{:?}", shape_sig(out), out.dtype);
    if g.outputs().contains(&n.output) {
        f.strict.push_str("!out");
        f.relaxed.push_str("!out");
    }
    f
}

fn tensor_form(g: &Graph, t: TensorId, depth: usize, f: &mut NodeForm) {
    let tensor = g.tensor(t);
    let producer = tensor.producer.map(|nid| g.node(nid));
    match producer {
        None => {
            f.leaves.push(t);
            let _ = write!(f.strict, "in[{}:{:?}]", shape_sig(tensor), tensor.dtype);
            f.relaxed.push_str("in");
        }
        Some(_) if depth == 0 => {
            f.leaves.push(t);
            let _ = write!(f.strict, "cut[{}:{:?}]", shape_sig(tensor), tensor.dtype);
            f.relaxed.push_str("cut");
        }
        Some(p) => {
            f.strict.push('(');
            f.relaxed.push('(');
            op_sig(p, f);
            for &i in &p.inputs {
                f.strict.push(' ');
                f.relaxed.push(' ');
                tensor_form(g, i, depth - 1, f);
            }
            f.strict.push(')');
            f.relaxed.push(')');
        }
    }
}

/// Writes the operator signature. Integer slice bounds are the one
/// attribute masked out of the strict form: they are exactly what the
/// per-template cache key parameterizes as `$b{i}` (the N experts of an MoE
/// differ only there). Every other attribute stays concrete — a slice along
/// a different *dim* is a different template.
fn op_sig(n: &Node, f: &mut NodeForm) {
    match &n.op {
        Op::Slice { dim, start, end } if start.as_const().is_some() && end.as_const().is_some() => {
            let _ = write!(f.strict, "slice[dim={dim},bounds=$]");
        }
        op => {
            let _ = write!(f.strict, "{op:?}");
        }
    }
    f.relaxed.push_str(n.op.name());
}

fn shape_sig(t: &Tensor) -> String {
    let dims: Vec<String> = t
        .shape
        .dims()
        .iter()
        .map(|d| {
            d.as_const()
                .map_or_else(|| "~".to_owned(), |v| v.to_string())
        })
        .collect();
    dims.join("x")
}

fn bijective(a: &[TensorId], b: &[TensorId]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut fwd: HashMap<TensorId, TensorId> = HashMap::new();
    let mut seen: HashSet<TensorId> = HashSet::new();
    for (&x, &y) in a.iter().zip(b) {
        match fwd.get(&x) {
            Some(&prev) if prev != y => return false,
            Some(_) => {}
            None => {
                if !seen.insert(y) {
                    return false;
                }
                fwd.insert(x, y);
            }
        }
    }
    true
}

/// 64-bit FNV-1a: tiny, fully deterministic across platforms and releases
/// (unlike `DefaultHasher`, whose algorithm is not stability-guaranteed),
/// so golden tests can pin fingerprints.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests;
