use super::*;
use entangle_ir::{DType, GraphBuilder, Op};

fn slice(dim: usize, lo: i64, hi: i64) -> Op {
    Op::Slice {
        dim,
        start: lo.into(),
        end: hi.into(),
    }
}

/// Per-expert gate slices differ only in integer bounds — one class.
#[test]
fn expert_slices_share_one_class() {
    let mut b = GraphBuilder::new("experts");
    let gates = b.input("gates", &[1, 4, 8], DType::F32);
    for ex in 0..4 {
        b.apply(&format!("gate{ex}"), slice(2, ex, ex + 1), &[gates])
            .unwrap();
    }
    let g = b.finish().unwrap();
    let a = analyze(&g);
    assert_eq!(a.class_count(), 1);
    assert_eq!(a.classes[0].members, vec![0, 1, 2, 3]);
    assert_eq!(a.classes[0].representative(), 0);
    assert_eq!(a.largest_class(), 4);
    assert_eq!(a.covered(), 4);
    assert_eq!(a.report.error_count(), 0);
}

/// A slice along a *different dim* is a different template — and close
/// enough to warrant the IS02 near-miss warning.
#[test]
fn off_dim_slice_is_a_near_miss_singleton() {
    let mut b = GraphBuilder::new("near-miss");
    let x = b.input("x", &[4, 4, 8], DType::F32);
    for ex in 0..3 {
        b.apply(&format!("s{ex}"), slice(2, ex, ex + 1), &[x])
            .unwrap();
    }
    b.apply("odd", slice(1, 0, 1), &[x]).unwrap();
    let g = b.finish().unwrap();
    let a = analyze(&g);
    assert_eq!(a.class_count(), 1);
    assert_eq!(a.classes[0].members.len(), 3);
    let is02: Vec<_> = a
        .report
        .diagnostics
        .iter()
        .filter(|d| d.code == codes::IS02)
        .collect();
    assert_eq!(is02.len(), 1, "exactly the off-dim slice is a near miss");
    assert_eq!(a.report.error_count(), 0);
}

/// Repeated layers group per-position; coverage counts all grouped ops.
#[test]
fn repeated_layers_group_positionwise() {
    let mut b = GraphBuilder::new("layers");
    let mut x = b.input("x", &[4, 8], DType::F32);
    for l in 0..4 {
        let w = b.input(&format!("w{l}"), &[8, 8], DType::F32);
        let h = b.apply(&format!("mm{l}"), Op::Matmul, &[x, w]).unwrap();
        x = b.apply(&format!("act{l}"), Op::Relu, &[h]).unwrap();
    }
    b.mark_output(x);
    let g = b.finish().unwrap();
    let a = analyze(&g);
    // The first layers still see the graph input inside their radius-2
    // cone and the last relu carries the !out marker, so the steady-state
    // middle groups: matmuls of layers 2 and 3, relus of layers 1 and 2.
    assert_eq!(a.class_count(), 2);
    for c in &a.classes {
        assert_eq!(c.members.len(), 2);
    }
}

/// Tied vs distinct leaves: same canonical form, non-bijective alignment.
#[test]
fn tied_weights_trigger_is03() {
    let mut b = GraphBuilder::new("tied");
    let w = b.input("w", &[4, 4], DType::F32);
    let w1 = b.input("w1", &[4, 4], DType::F32);
    let w2 = b.input("w2", &[4, 4], DType::F32);
    b.apply("tied", Op::Add, &[w, w]).unwrap();
    b.apply("free", Op::Add, &[w1, w2]).unwrap();
    let g = b.finish().unwrap();
    let a = analyze(&g);
    assert_eq!(a.class_count(), 1);
    let is03 = a
        .report
        .diagnostics
        .iter()
        .filter(|d| d.code == codes::IS03)
        .count();
    assert_eq!(is03, 1);
    assert_eq!(a.report.error_count(), 0);
}

/// The graph-output marker splits otherwise identical operators.
#[test]
fn output_marker_splits_classes() {
    let mut b = GraphBuilder::new("out-marker");
    let x = b.input("x", &[4, 4], DType::F32);
    let a1 = b.apply("a1", Op::Relu, &[x]).unwrap();
    let _a2 = b.apply("a2", Op::Relu, &[x]).unwrap();
    let _a3 = b.apply("a3", Op::Relu, &[x]).unwrap();
    b.mark_output(a1);
    let g = b.finish().unwrap();
    let a = analyze(&g);
    // a2/a3 group; a1 (a graph output) stands alone.
    assert_eq!(a.class_count(), 1);
    assert_eq!(a.classes[0].members, vec![1, 2]);
}

/// Radius matters: identical at depth 1, distinguishable at depth 2.
#[test]
fn radius_controls_discrimination() {
    let mut b = GraphBuilder::new("radius");
    let x = b.input("x", &[4, 4], DType::F32);
    let r = b.apply("r", Op::Relu, &[x]).unwrap();
    let e = b.apply("e", Op::Exp, &[x]).unwrap();
    let n1 = b.apply("n1", Op::Neg, &[r]).unwrap();
    let n2 = b.apply("n2", Op::Neg, &[e]).unwrap();
    b.apply("t1", Op::Tanh, &[n1]).unwrap();
    b.apply("t2", Op::Tanh, &[n2]).unwrap();
    let g = b.finish().unwrap();
    // At radius 1 the tanhs see only (neg cut) — grouped.
    let shallow = analyze_with(&g, 1);
    assert!(shallow
        .classes
        .iter()
        .any(|c| c.op == "tanh" && c.members.len() == 2));
    // At radius 2 they see relu vs exp — split.
    let deep = analyze_with(&g, 2);
    assert!(!deep.classes.iter().any(|c| c.op == "tanh"));
}

/// Symbolic dims are masked: shapes that differ only in a symbol still
/// produce one template (the `Renamer` generalization the checker needs).
#[test]
fn json_is_stable_and_complete() {
    let mut b = GraphBuilder::new("j");
    let gates = b.input("gates", &[1, 4, 8], DType::F32);
    for ex in 0..2 {
        b.apply(&format!("gate{ex}"), slice(2, ex, ex + 1), &[gates])
            .unwrap();
    }
    let g = b.finish().unwrap();
    let a = analyze(&g);
    let json = a.to_json(&g);
    assert!(json.starts_with("{\"version\":1,\"graph\":\"j\",\"radius\":2,\"operators\":2,"));
    assert!(json.contains("\"classes\":[{\"id\":0,\"fingerprint\":\""));
    assert!(json.contains("\"representative\":\"gate0\",\"members\":[\"gate0\",\"gate1\"]"));
    assert!(json.contains("\"coverage\":{\"covered\":2,\"total\":2,\"percent\":100.0}"));
    assert!(json.ends_with("\"diagnostics\":[]}"));
}

#[test]
fn summary_reads_like_the_info_line() {
    let mut b = GraphBuilder::new("s");
    let x = b.input("x", &[4, 4], DType::F32);
    b.apply("a1", Op::Relu, &[x]).unwrap();
    b.apply("a2", Op::Relu, &[x]).unwrap();
    b.apply("b1", Op::Exp, &[x]).unwrap();
    let g = b.finish().unwrap();
    let a = analyze(&g);
    assert_eq!(
        a.summary(),
        "1 template classes, largest 2, 2/3 operators covered (66.7%)"
    );
}
