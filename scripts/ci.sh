#!/usr/bin/env bash
# Offline CI gate: build, tests (including the lemma-corpus audit),
# formatting, and lints. Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q

echo "==> model-zoo shard sweep (entangle shard over exported strategies)"
cargo run --release -q -p entangle-bench --bin export_zoo -- examples/graphs
for gd in examples/graphs/*.gd.json; do
  base="${gd%.gd.json}"
  ./target/release/entangle shard "$gd" --gs "$base.gs.json" --maps "$base.maps" >/dev/null \
    || { echo "shard sweep FAILED on $base"; exit 1; }
done
echo "    7 workloads clean"

echo "==> model-zoo --jobs sweep (parallel checker at jobs=1 and jobs=4)"
for jobs in 1 4; do
  for gd in examples/graphs/*.gd.json; do
    base="${gd%.gd.json}"
    ./target/release/entangle --jobs "$jobs" check "$base.gs.json" "$gd" --maps "$base.maps" >/dev/null \
      || { echo "check --jobs $jobs FAILED on $base"; exit 1; }
  done
done
echo "    7 workloads clean at jobs=1 and jobs=4"

echo "==> model-zoo certify sweep (emit certificates at jobs=4, re-check with the trusted kernel)"
certdir=$(mktemp -d)
trap 'rm -rf "$certdir"' EXIT
for gd in examples/graphs/*.gd.json; do
  base="${gd%.gd.json}"
  cert="$certdir/$(basename "$base").cert.json"
  ./target/release/entangle --jobs 4 certify "$base.gs.json" "$gd" --maps "$base.maps" --emit "$cert" >/dev/null \
    || { echo "certify (emit, jobs=4) FAILED on $base"; exit 1; }
  ./target/release/entangle certify "$base.gs.json" "$gd" --check "$cert" >/dev/null \
    || { echo "certify (re-check) FAILED on $base"; exit 1; }
done
echo "    7 certificates emitted at jobs=4 and kernel-accepted"

echo "==> model-zoo trace sweep (--trace on every subcommand, validate with trace --check)"
tracedir=$(mktemp -d)
trap 'rm -rf "$certdir" "$tracedir"' EXIT
for gd in examples/graphs/*.gd.json; do
  base="${gd%.gd.json}"
  name=$(basename "$base")
  ./target/release/entangle --trace "$tracedir/$name.check.jsonl" \
    check "$base.gs.json" "$gd" --maps "$base.maps" >/dev/null \
    || { echo "traced check FAILED on $base"; exit 1; }
  ./target/release/entangle --trace "$tracedir/$name.shard.jsonl" \
    shard "$gd" --gs "$base.gs.json" --maps "$base.maps" >/dev/null \
    || { echo "traced shard FAILED on $base"; exit 1; }
  ./target/release/entangle --trace "$tracedir/$name.info.jsonl" \
    info "$gd" >/dev/null \
    || { echo "traced info FAILED on $base"; exit 1; }
  for t in "$tracedir/$name".*.jsonl; do
    ./target/release/entangle trace --check "$t" >/dev/null \
      || { echo "trace validation FAILED on $t"; exit 1; }
  done
done
echo "    21 traces emitted, parsed, and balanced"

echo "==> model-zoo iso sweep (entangle iso, clean template partitions)"
for gd in examples/graphs/*.gd.json; do
  ./target/release/entangle iso "$gd" --json >/dev/null \
    || { echo "iso sweep FAILED on $gd"; exit 1; }
done
echo "    7 graphs partitioned, no IS errors; goldens pinned by tests/iso_golden.rs"

echo "==> deep-model certify round-trip (16-layer Llama-3 tp8, emit + kernel re-check)"
cargo run --release -q -p entangle-bench --bin export_zoo -- "$certdir" --deep-llama 16
deep="$certdir/llama3_l16"
./target/release/entangle certify "$deep.gs.json" "$deep.gd.json" --maps "$deep.maps" \
  --emit "$deep.cert.json" >/dev/null \
  || { echo "deep certify (emit) FAILED"; exit 1; }
./target/release/entangle certify "$deep.gs.json" "$deep.gd.json" --check "$deep.cert.json" >/dev/null \
  || { echo "deep certify (re-check) FAILED"; exit 1; }
echo "    16-layer certificate emitted and kernel-accepted"

echo "==> depth-scaling smoke (bench_scale --layers 1,4: writes results/BENCH_scale.json)"
./target/release/bench_scale --layers 1,4 >/dev/null
echo "    results/BENCH_scale.json written, verdicts identical with templates on/off"

echo "==> rule-corpus static analysis (entangle rules, clean corpus gate)"
./target/release/entangle rules --json > /dev/null \
  || { echo "entangle rules found error-severity RL diagnostics"; exit 1; }
rules_summary=$(./target/release/entangle rules)
echo "    ${rules_summary%%$'\n'*}"
echo "    corpus clean (no RL errors); golden output pinned by tests/rules_golden.rs"

echo "==> rule-backoff smoke (bench_rules: writes results/BENCH_rules.json)"
./target/release/bench_rules >/dev/null
echo "    results/BENCH_rules.json written"

echo "==> trace profile smoke (entangle trace gpt-tp2)"
./target/release/entangle trace gpt-tp2 >/dev/null \
  || { echo "entangle trace gpt-tp2 FAILED"; exit 1; }

echo "==> trace-overhead smoke (bench_trace: <=5% instrumentation cost)"
./target/release/bench_trace >/dev/null
echo "    results/BENCH_trace.json written, overhead gate passed"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets (-D warnings + pedantic subset)"
cargo clippy --workspace --all-targets -- -D warnings \
  -W clippy::uninlined_format_args \
  -W clippy::explicit_iter_loop \
  -W clippy::manual_let_else \
  -W clippy::semicolon_if_nothing_returned

echo "CI OK"
