#!/usr/bin/env bash
# Offline CI gate: build, tests (including the lemma-corpus audit),
# formatting, and lints. Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q

echo "==> model-zoo shard sweep (entangle shard over exported strategies)"
cargo run --release -q -p entangle-bench --bin export_zoo -- examples/graphs
for gd in examples/graphs/*.gd.json; do
  base="${gd%.gd.json}"
  ./target/release/entangle shard "$gd" --gs "$base.gs.json" --maps "$base.maps" >/dev/null \
    || { echo "shard sweep FAILED on $base"; exit 1; }
done
echo "    7 workloads clean"

echo "==> model-zoo certify sweep (emit certificates, re-check with the trusted kernel)"
certdir=$(mktemp -d)
trap 'rm -rf "$certdir"' EXIT
for gd in examples/graphs/*.gd.json; do
  base="${gd%.gd.json}"
  cert="$certdir/$(basename "$base").cert.json"
  ./target/release/entangle certify "$base.gs.json" "$gd" --maps "$base.maps" --emit "$cert" >/dev/null \
    || { echo "certify (emit) FAILED on $base"; exit 1; }
  ./target/release/entangle certify "$base.gs.json" "$gd" --check "$cert" >/dev/null \
    || { echo "certify (re-check) FAILED on $base"; exit 1; }
done
echo "    7 certificates kernel-accepted"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "CI OK"
