#!/usr/bin/env bash
# Offline CI gate: build, tests (including the lemma-corpus audit),
# formatting, and lints. Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "CI OK"
