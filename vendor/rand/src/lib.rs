//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the (small) API subset the workspace uses: the [`Rng`] trait with
//! `gen`/`gen_range`/`gen_bool`, the [`SeedableRng`] trait, and a
//! deterministic [`rngs::StdRng`] built on the xoshiro256++ generator.
//!
//! The streams are *not* identical to upstream `rand`; every consumer in this
//! workspace only relies on determinism-under-seed, uniformity and range
//! correctness, all of which hold here.

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from a range by an [`Rng`].
pub trait SampleUniform: Sized + Copy {
    /// Uniform sample from `[low, high)`; `low < high` is a caller invariant.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform sample from `[low, high]`; `low <= high` is a caller invariant.
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as $wide).wrapping_sub(low as $wide);
                let v = rng.next_u64() as $wide % span;
                (low as $wide).wrapping_add(v) as $t
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as $wide).wrapping_sub(low as $wide).wrapping_add(1);
                if span == 0 {
                    // The full domain: any value is in range.
                    return rng.next_u64() as $t;
                }
                let v = rng.next_u64() as $wide % span;
                (low as $wide).wrapping_add(v) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64,
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        low + unit * (high - low)
    }
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        // The closed/half-open distinction is measure-zero for floats.
        if low == high {
            low
        } else {
            Self::sample_half_open(rng, low, high)
        }
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_half_open(rng, low as f64, high as f64) as f32
    }
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_closed(rng, low as f64, high as f64) as f32
    }
}

/// A range sampleable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_closed(rng, *self.start(), *self.end())
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one sample from the type's standard distribution.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The raw entropy source: everything else is derived from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// A sample from the type's standard distribution (`f64` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic seeding.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// A generator seeded from the system clock — the `rand::thread_rng`
/// equivalent for code that wants a nondeterministic stream.
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED);
    SeedableRng::seed_from_u64(nanos)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-3i64..5);
            assert!((-3..5).contains(&v));
            let u = rng.gen_range(0usize..=4);
            assert!(u <= 4);
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for c in counts {
            assert!(c > 700 && c < 1300, "bucket count {c} far from uniform");
        }
    }
}
