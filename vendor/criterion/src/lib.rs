//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the benchmarking API subset the workspace uses: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is deliberately simple — each benchmark runs a short warm-up
//! followed by a fixed number of timed batches and reports the mean wall-clock
//! time per iteration. Good enough to detect order-of-magnitude regressions
//! and to keep `cargo bench` compiling and running offline; it makes no
//! attempt at criterion's statistical rigor.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque-ish wrapper that defeats constant-folding of benchmark results.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Label for one parameterized benchmark instance.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A label `"{function_name}/{parameter}"`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A label from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Passed to benchmark closures; `iter` runs and times the workload.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, keeping its return value alive via [`black_box`].
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(label: &str, mut f: impl FnMut(&mut Bencher), sample_size: usize) {
    // Warm-up and calibration: find an iteration count that takes ~5ms.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed > Duration::from_millis(5) || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }
    let samples = sample_size.clamp(2, 20);
    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        total_iters += iters;
    }
    let per_iter = total.as_nanos() as f64 / total_iters.max(1) as f64;
    let (value, unit) = if per_iter >= 1e9 {
        (per_iter / 1e9, "s")
    } else if per_iter >= 1e6 {
        (per_iter / 1e6, "ms")
    } else if per_iter >= 1e3 {
        (per_iter / 1e3, "µs")
    } else {
        (per_iter, "ns")
    };
    println!("{label:<60} {value:>10.3} {unit}/iter");
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs a benchmark identified by `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) {
        run_one(&format!("{}/{}", self.name, id), f, self.sample_size);
    }

    /// Runs a benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        run_one(
            &format!("{}/{}", self.name, id),
            |b| f(b, input),
            self.sample_size,
        );
    }

    /// Ends the group (kept for API compatibility; no-op).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, f, 10);
        self
    }
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_api_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(2);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("sum_n", 50), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        g.finish();
    }
}
