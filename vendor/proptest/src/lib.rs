//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! reimplements the subset of proptest this workspace's property tests use:
//!
//! - the [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map`,
//! - range strategies over the integer types and `f64`,
//! - tuple strategies, [`strategy::Just`] and `prop_oneof!` unions,
//! - [`collection::vec`] with flexible size specifications,
//! - the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//!   `prop_assert!`, `prop_assert_eq!` and `prop_assume!`.
//!
//! Unlike upstream proptest there is no shrinking: on failure the offending
//! inputs are reported verbatim. Generation is deterministic per test (the
//! seed is derived from the test function's name), so failures reproduce.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// A source of random values of one type.
    ///
    /// The associated `Value` type mirrors upstream proptest, so signatures
    /// like `impl Strategy<Value = Step>` work unchanged.
    pub trait Strategy {
        /// The type of generated values.
        type Value: Debug;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Discards generated values that fail the predicate by resampling.
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                f,
                whence,
            }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T: Debug> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// The result of [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// The result of [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
        pub(crate) whence: &'static str,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter {:?}: rejected 1000 samples in a row",
                self.whence
            );
        }
    }

    /// A uniform choice among boxed strategies (built by `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T: Debug> Union<T> {
        /// Builds a union; `options` must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// An element-count specification for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// A strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Per-`proptest!` configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 32 }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject(String),
        /// `prop_assert!`-style failure.
        Fail(String),
    }

    impl TestCaseError {
        /// A failure with a message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        /// A rejection (assumption violated) with a reason.
        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Derives a deterministic seed from a test's name.
    pub fn seed_of(name: &str) -> u64 {
        // FNV-1a.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
}

#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;
}

/// The glob import every property test starts with.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let seed = $crate::test_runner::seed_of(concat!(module_path!(), "::", stringify!($name)));
            let mut rejected: u32 = 0;
            let mut case: u32 = 0;
            while case < config.cases {
                let mut rng = <$crate::__rt::StdRng as $crate::__rt::SeedableRng>::seed_from_u64(
                    seed ^ ((case as u64 + rejected as u64 * 0x9E37) << 1),
                );
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    Ok(()) => case += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        assert!(
                            rejected < 1000,
                            "proptest {}: too many rejected cases",
                            stringify!($name)
                        );
                    }
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed at case {}: {}",
                            stringify!($name), case, msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($lhs), stringify!($rhs), l, r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($lhs),
            stringify!($rhs),
            l
        );
    }};
}

/// Skips the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// A uniform choice among several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(a in 1i64..10, b in 0usize..=3, f in -1.0f64..1.0) {
            prop_assert!((1..10).contains(&a));
            prop_assert!(b <= 3);
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_sizes_respected(v in collection::vec(0u8..4, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 4));
        }

        #[test]
        fn destructuring_and_maps((a, b) in (0i64..5, 5i64..9).prop_map(|(x, y)| (x, y))) {
            prop_assert!(a < 5 && (5..9).contains(&b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn assume_rejects_without_failing(x in 0i64..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn oneof_and_flat_map(v in prop_oneof![Just(1i64), Just(2i64)].prop_flat_map(|n| {
            collection::vec(0i64..10, (n as usize)..=(n as usize))
        })) {
            prop_assert!(v.len() == 1 || v.len() == 2);
        }
    }

    #[test]
    fn deterministic_per_test() {
        use crate::strategy::Strategy;
        use rand::SeedableRng;
        let s = crate::collection::vec(0i64..100, 3..6);
        let a = s.generate(&mut rand::rngs::StdRng::seed_from_u64(9));
        let b = s.generate(&mut rand::rngs::StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
