//! Golden trace tests: the structured trace emitted by a full checker run
//! has the documented span vocabulary, stage ordering and nesting; a shard
//! violation short-circuits the expensive stages out of the trace; and the
//! instrumentation cannot perturb the search itself.

use std::collections::BTreeMap;

use entangle::{check_refinement, CheckOptions};
use entangle_models::{gpt, regression, Arch, ModelConfig, RegressionConfig};
use entangle_parallel::{bugs, grad_accumulation, parallelize, Strategy};
use entangle_trace::{TraceReport, Tracer};

fn regression_workload() -> (
    entangle_ir::Graph,
    entangle_parallel::Distributed,
    entangle::Relation,
) {
    let cfg = RegressionConfig {
        batch: 8,
        features: 4,
    };
    let gs = regression(&cfg);
    let dist = grad_accumulation(&cfg, 2, true);
    let ri = dist.relation(&gs).expect("relation builds");
    (gs, dist, ri)
}

#[test]
fn golden_stage_ordering_and_nesting() {
    let (gs, dist, ri) = regression_workload();
    let (tracer, sink) = Tracer::collect();
    let opts = CheckOptions {
        certify: true,
        trace: tracer.clone(),
        ..CheckOptions::default()
    };
    check_refinement(&gs, &dist.graph, &ri, &opts).expect("regression workload verifies");

    let report = TraceReport::from_records(&sink.records()).expect("trace balances");
    let root = report.find("check_refinement").expect("root span");
    assert_eq!(root.parent, None, "check_refinement is the root");
    assert_eq!(root.attr("outcome"), Some("verified"));

    // The five pipeline stages appear exactly once each, in order, as
    // children of the root.
    let mut last_start = 0;
    for name in [
        "stage:lint",
        "stage:shard",
        "stage:map",
        "stage:outputs",
        "stage:certify",
    ] {
        let spans: Vec<_> = report.spans_named(name).collect();
        assert_eq!(spans.len(), 1, "{name} appears exactly once");
        let sp = spans[0];
        assert_eq!(sp.parent, Some(root.id), "{name} nests under the root");
        assert!(
            sp.start_us >= last_start,
            "{name} starts after the previous stage"
        );
        last_start = sp.start_us;
    }
    assert_eq!(
        report.find("stage:certify").unwrap().attr("outcome"),
        Some("accepted")
    );

    // Per-operator search spans nest under stage:map; the saturation
    // machinery (encode / saturate / extract) nests under an operator.
    let map = report.find("stage:map").unwrap();
    let ops: Vec<_> = report
        .spans
        .iter()
        .filter(|s| s.name.starts_with("op:"))
        .collect();
    assert!(!ops.is_empty(), "the mapping search traces its operators");
    for op in &ops {
        assert_eq!(op.parent, Some(map.id), "{} nests under stage:map", op.name);
    }
    for name in ["encode", "saturate", "extract"] {
        let mut found = 0;
        for sp in report.spans_named(name) {
            let parent = sp.parent.expect("saturation span is nested");
            assert!(
                report
                    .spans
                    .iter()
                    .any(|s| s.id == parent && s.name.starts_with("op:")),
                "{name} nests under an op: span"
            );
            found += 1;
        }
        assert!(found > 0, "at least one {name} span");
    }

    // Saturation iterations are replayed as timestamped events inside the
    // run they belong to.
    assert!(
        report.events.iter().any(|e| e.name == "iteration"),
        "per-iteration telemetry events present"
    );
}

#[test]
fn bug1_shard_violation_short_circuits_the_trace() {
    let case = bugs::bug(1, true);
    let (tracer, sink) = Tracer::collect();
    let opts = CheckOptions {
        trace: tracer.clone(),
        ..CheckOptions::default()
    };
    match case.run(&opts) {
        bugs::BugVerdict::RefinementBug(_) => {}
        _ => panic!("bug 1 must be caught as a refinement bug"),
    }

    let report = TraceReport::from_records(&sink.records()).expect("failure trace balances");
    let root = report.find("check_refinement").expect("root span");
    assert_eq!(root.attr("outcome"), Some("shard-violation"));
    let shard = report.find("stage:shard").expect("shard stage ran");
    assert_eq!(shard.attr("outcome"), Some("violation"));

    // The propagation pass proves the violation before any saturation: the
    // skipped stages must be *absent* from the trace, not merely fast.
    for name in [
        "stage:map",
        "encode",
        "saturate",
        "extract",
        "stage:outputs",
        "stage:certify",
    ] {
        assert!(report.find(name).is_none(), "{name} must be absent");
    }
    assert!(
        !report.spans.iter().any(|s| s.name.starts_with("op:")),
        "no operator search ever started"
    );
}

#[test]
fn golden_trace_roundtrips_through_jsonl() {
    let (gs, dist, ri) = regression_workload();
    let (tracer, sink) = Tracer::collect();
    let opts = CheckOptions {
        trace: tracer.clone(),
        ..CheckOptions::default()
    };
    check_refinement(&gs, &dist.graph, &ri, &opts).expect("regression workload verifies");

    let direct = TraceReport::from_records(&sink.records()).expect("collected trace balances");
    let parsed = TraceReport::from_jsonl(&sink.to_jsonl()).expect("serialized trace parses");
    assert_eq!(parsed.spans.len(), direct.spans.len());
    assert_eq!(parsed.events.len(), direct.events.len());
    assert!(parsed.to_json().starts_with("{\"version\":1,"));
    assert!(parsed.to_chrome_json().starts_with("{\"traceEvents\":["));
}

#[test]
fn tracing_does_not_perturb_the_search() {
    let cfg = ModelConfig::tiny();
    let gs = gpt(&cfg);
    let dist = parallelize(&cfg, Arch::Gpt, &Strategy::tp(2));
    let ri = dist.relation(&gs).expect("relation builds");

    let quiet = check_refinement(&gs, &dist.graph, &ri, &CheckOptions::default())
        .expect("GPT/TP2 verifies untraced");
    let (tracer, _sink) = Tracer::collect();
    let opts = CheckOptions {
        trace: tracer.clone(),
        ..CheckOptions::default()
    };
    let traced = check_refinement(&gs, &dist.graph, &ri, &opts).expect("GPT/TP2 verifies traced");

    // Identical lemma firings...
    let stats = |o: &entangle::CheckOutcome| -> BTreeMap<String, u64> {
        o.lemma_stats
            .iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect()
    };
    assert_eq!(stats(&quiet), stats(&traced));

    // ...identical per-rule telemetry key set and match/application counts
    // (timings may differ; the key set and firing counts may not)...
    let a = &quiet.saturation.telemetry.rules;
    let b = &traced.saturation.telemetry.rules;
    assert_eq!(a.len(), b.len());
    for (name, ra) in a {
        let rb = b
            .get(name)
            .unwrap_or_else(|| panic!("rule {name} missing under tracing"));
        assert_eq!(
            (ra.matches, ra.applications),
            (rb.matches, rb.applications),
            "rule {name} fired differently under tracing"
        );
    }

    // ...and identical stop reasons and e-graph growth curve.
    assert_eq!(quiet.saturation.stops, traced.saturation.stops);
    assert_eq!(quiet.saturation.growth(), traced.saturation.growth());
}
