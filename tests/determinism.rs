//! The scheduler's determinism contract, checked end to end: for any
//! `jobs`, `check_refinement` produces the *same* `CheckOutcome` — reports,
//! relations, lemma totals, certificate bytes, trace structure — and the
//! same failure on the Table 3 bugs. Workers only race on wall-clock and on
//! which of them computes a memo entry first; everything observable is
//! merged in sequential operator order.
//!
//! What is excluded from the comparison, and why:
//!
//! - timing (`elapsed`, `dur_us`, `*_us` attributes/fields) — wall clock;
//! - the `worker` span attribute — records which thread ran the operator;
//! - [`entangle::ParStats`] — hit/miss counts depend on scheduling order
//!   by design (the one documented jobs-dependent field).

use entangle::{check_refinement, CheckOptions, CheckOutcome, RefinementError};
use entangle_bench::zoo;
use entangle_parallel::bugs::{all_bugs, BugVerdict};
use entangle_trace::{Record, Tracer};

/// Deterministic fingerprint of a trace: record order, kinds, names and
/// attributes, with wall-clock and thread-identity noise stripped.
fn trace_signature(records: &[Record]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(r.kind.as_str());
        out.push(' ');
        out.push_str(&r.name);
        for (k, v) in &r.attrs {
            if k == "worker" || k == "elapsed" || k.ends_with("_us") {
                continue;
            }
            out.push_str(&format!(" {k}={v}"));
        }
        out.push('\n');
    }
    out
}

/// Deterministic fingerprint of a full check result (see module docs for
/// the exclusions).
fn outcome_signature(
    gs: &entangle_ir::Graph,
    result: &Result<CheckOutcome, RefinementError>,
) -> String {
    let mut out = String::new();
    match result {
        Err(e) => {
            out.push_str(&format!("FAILED\n{e:?}\n"));
        }
        Ok(o) => {
            out.push_str("VERIFIED\n");
            out.push_str("== output relation ==\n");
            out.push_str(&o.output_relation.display(gs).to_string());
            out.push_str("== full relation ==\n");
            out.push_str(&o.full_relation.display(gs).to_string());
            out.push_str("== op reports ==\n");
            for r in &o.op_reports {
                out.push_str(&format!(
                    "{} nodes={} mappings={} hinted={} rounds={} stop={:?}\n",
                    r.name, r.egraph_nodes, r.mappings, r.hinted, r.rounds, r.stop
                ));
            }
            out.push_str("== lemma stats ==\n");
            let mut lemmas: Vec<(&str, u64)> = o.lemma_stats.iter().collect();
            lemmas.sort();
            for (name, count) in lemmas {
                out.push_str(&format!("{name}={count}\n"));
            }
            out.push_str("== saturation ==\n");
            out.push_str(&format!("stops={:?}\n", o.saturation.stops));
            let tel = &o.saturation.telemetry;
            out.push_str(&format!(
                "searched={} skipped={}\n",
                tel.searched_classes, tel.skipped_classes
            ));
            for it in &tel.iterations {
                out.push_str(&format!(
                    "iter nodes={} classes={} memo={}\n",
                    it.nodes, it.classes, it.memo
                ));
            }
            let mut rules: Vec<(&str, u64, u64)> = tel
                .rules
                .iter()
                .map(|(k, v)| (k.as_str(), v.matches, v.applications))
                .collect();
            rules.sort();
            for (name, matches, applications) in rules {
                out.push_str(&format!("rule {name} m={matches} a={applications}\n"));
            }
            out.push_str("== certificate ==\n");
            match &o.certificate {
                None => out.push_str("none\n"),
                Some(cert) => {
                    out.push_str(&entangle_cert::to_json(cert).expect("certificate serializes"));
                }
            }
        }
    }
    out
}

fn opts_with(jobs: usize, tracer: &Tracer) -> CheckOptions {
    CheckOptions {
        jobs,
        trace: tracer.clone(),
        ..CheckOptions::default()
    }
}

#[test]
fn zoo_outcomes_are_identical_across_jobs() {
    for case in zoo() {
        let ri = case.dist.relation(&case.gs).expect("relation builds");
        let mut baseline: Option<(String, String)> = None;
        for jobs in [1usize, 2, 4] {
            let (tracer, sink) = Tracer::collect();
            let result =
                check_refinement(&case.gs, &case.dist.graph, &ri, &opts_with(jobs, &tracer));
            drop(tracer);
            let sig = outcome_signature(&case.gs, &result);
            let trace_sig = trace_signature(&sink.records());
            match &baseline {
                None => baseline = Some((sig, trace_sig)),
                Some((s0, t0)) => {
                    assert_eq!(
                        s0, &sig,
                        "{}: outcome differs between jobs=1 and jobs={jobs}",
                        case.name
                    );
                    assert_eq!(
                        t0, &trace_sig,
                        "{}: trace structure differs between jobs=1 and jobs={jobs}",
                        case.name
                    );
                }
            }
        }
    }
}

#[test]
fn table3_bug_localization_is_identical_across_jobs() {
    // Both the buggy variants (same first-unmapped-operator report) and
    // their fixed twins (same clean verdict).
    for case in all_bugs(true).into_iter().chain(all_bugs(false)) {
        let mut baseline: Option<(String, String)> = None;
        for jobs in [1usize, 2, 4] {
            let (tracer, sink) = Tracer::collect();
            let verdict = case.run(&opts_with(jobs, &tracer));
            drop(tracer);
            let sig = match verdict {
                BugVerdict::Clean => "clean".to_owned(),
                BugVerdict::RefinementBug(e) => format!("refinement: {e:?}"),
                BugVerdict::ExpectationBug(e) => format!("expectation: {e:?}"),
            };
            let trace_sig = trace_signature(&sink.records());
            match &baseline {
                None => baseline = Some((sig, trace_sig)),
                Some((s0, t0)) => {
                    assert_eq!(
                        s0, &sig,
                        "bug {} ({}, buggy={}): verdict differs between jobs=1 and jobs={jobs}",
                        case.id, case.name, case.buggy
                    );
                    assert_eq!(
                        t0, &trace_sig,
                        "bug {} ({}, buggy={}): trace differs between jobs=1 and jobs={jobs}",
                        case.id, case.name, case.buggy
                    );
                }
            }
        }
    }
}
