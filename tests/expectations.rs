//! Integration of §4.4 user-expectation checking through the public API.

use entangle::{check_expectation, CheckOptions, ExpectationError, Relation};
use entangle_ir::{DType, GraphBuilder, Op};

/// A data-parallel-style gradient aggregation scenario.
fn scenario(with_aggregation: bool) -> (entangle_ir::Graph, entangle_ir::Graph, Relation) {
    let mut gs = GraphBuilder::new("seq");
    let x = gs.input("x", &[8, 4], DType::F32);
    let g = gs
        .apply(
            "grad",
            Op::SumDim {
                dim: 0,
                keepdim: false,
            },
            &[x],
        )
        .unwrap();
    gs.mark_output(g);
    let gs = gs.finish().unwrap();

    let mut gd = GraphBuilder::new("dist");
    let x0 = gd.input("x.0", &[4, 4], DType::F32);
    let x1 = gd.input("x.1", &[4, 4], DType::F32);
    let g0 = gd
        .apply(
            "grad.0",
            Op::SumDim {
                dim: 0,
                keepdim: false,
            },
            &[x0],
        )
        .unwrap();
    let g1 = gd
        .apply(
            "grad.1",
            Op::SumDim {
                dim: 0,
                keepdim: false,
            },
            &[x1],
        )
        .unwrap();
    gd.mark_output(g0);
    gd.mark_output(g1);
    if with_aggregation {
        let agg = gd.apply("grad_agg", Op::AllReduce, &[g0, g1]).unwrap();
        gd.mark_output(agg);
    }
    let gd = gd.finish().unwrap();

    let mut ri = Relation::builder(&gs, &gd);
    ri.map("x", "(concat x.0 x.1 0)").unwrap();
    let ri = ri.build();
    (gs, gd, ri)
}

#[test]
fn expectation_met_when_aggregated() {
    let (gs, gd, ri) = scenario(true);
    let fs = "grad".parse().unwrap();
    let fd = "grad_agg".parse().unwrap();
    check_expectation(&gs, &gd, &ri, &fs, &fd, &CheckOptions::default())
        .expect("aggregated gradient meets the expectation");
}

#[test]
fn expectation_violated_without_aggregation() {
    let (gs, gd, ri) = scenario(false);
    let fs = "grad".parse().unwrap();
    // The developer believed the rank-local gradient was already global.
    let fd = "grad.0".parse().unwrap();
    match check_expectation(&gs, &gd, &ri, &fs, &fd, &CheckOptions::default()) {
        Err(ExpectationError::Violated { found, expected }) => {
            assert_eq!(expected, "grad.0");
            // The report shows what the output actually is.
            assert!(found.iter().any(|m| m.contains("grad.")));
        }
        other => panic!("expected violation, got {:?}", other.map(|_| ())),
    }
}

#[test]
fn expectation_with_explicit_combiner_expression() {
    let (gs, gd, ri) = scenario(false);
    // The user may state the combiner inline: grad == grad.0 + grad.1.
    let fs = "grad".parse().unwrap();
    let fd = "(add grad.0 grad.1)".parse().unwrap();
    check_expectation(&gs, &gd, &ri, &fs, &fd, &CheckOptions::default())
        .expect("explicit sum combiner is a valid expectation");
}

#[test]
fn malformed_expectations_are_rejected() {
    let (gs, gd, ri) = scenario(true);
    let fs = "grad".parse().unwrap();
    let fd = "(concat grad.0 nonexistent 0)".parse().unwrap();
    match check_expectation(&gs, &gd, &ri, &fs, &fd, &CheckOptions::default()) {
        Err(ExpectationError::Invalid(_)) => {}
        other => panic!(
            "expected invalid-expectation error, got {:?}",
            other.map(|_| ())
        ),
    }
}
