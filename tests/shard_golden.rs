//! Golden localization tests for the sharding-propagation analysis over the
//! Table 3 bug corpus.
//!
//! Every *buggy* case must either be flagged by the shard pass at the exact
//! faulty operator (an `SH##` error anchored at a named node) or cleanly
//! defer — no shard errors, with the bug still caught downstream by
//! refinement or expectation checking. Every *fixed* case must produce zero
//! shard errors and verify end to end: the analysis may be imprecise
//! (`unknown` layouts) but never wrong.

use entangle::CheckOptions;
use entangle_egraph::RecExpr;
use entangle_lint::Anchor;
use entangle_parallel::bugs::{all_bugs, BugCase};
use entangle_shard::{analyze_pair, ShardAnalysis};

fn analyze(case: &BugCase) -> ShardAnalysis {
    let maps: Vec<(String, RecExpr)> = case
        .dist
        .input_maps
        .iter()
        .map(|(name, expr)| (name.clone(), expr.parse().expect("map parses")))
        .collect();
    analyze_pair(&case.gs, &case.dist.graph, &maps, &case.dist.declared)
}

/// The node name the first shard error anchors at, if any.
fn first_error_node(case: &BugCase, analysis: &ShardAnalysis) -> Option<(String, &'static str)> {
    let d = analysis.report.errors().next()?;
    match d.anchor {
        Anchor::Node(id) => Some((case.dist.graph.node(id).name.clone(), d.code)),
        _ => None,
    }
}

/// Expected localization per buggy case: `Some((code, node_prefix))` when
/// the shard pass must flag it pre-saturation, `None` when it defers.
fn expected_localization(id: usize) -> Option<(&'static str, &'static str)> {
    match id {
        // Misaligned rotary tables: both ranks apply rank-0's cos/sin rows.
        1 => Some(("SH02", "apply_rotary")),
        // The un-pad slice straddles the padding the all-gather introduced.
        3 => Some(("SH03", "unpad")),
        // Missing all-reduce: the second matmul consumes a partial sum.
        7 => Some(("SH04", "y.")),
        // Bugs 2/5/8/9 are scaling/aggregation faults (every rank's value is
        // a *consistent* layout, just the wrong math) and bug 4/6 are
        // structural: all defer to refinement/expectation checking.
        _ => None,
    }
}

#[test]
fn buggy_cases_localize_or_defer() {
    for case in all_bugs(true) {
        let analysis = analyze(&case);
        match expected_localization(case.id) {
            Some((code, prefix)) => {
                let (node, got) = first_error_node(&case, &analysis).unwrap_or_else(|| {
                    panic!(
                        "bug {}: expected {code} at {prefix}*, got no shard error",
                        case.id
                    )
                });
                assert_eq!(got, code, "bug {}: wrong code (at {node})", case.id);
                assert!(
                    node.starts_with(prefix),
                    "bug {}: {code} anchored at {node}, expected {prefix}*",
                    case.id
                );
            }
            None => {
                assert!(
                    analysis.is_clean(),
                    "bug {}: shard pass must defer cleanly, got:\n{}",
                    case.id,
                    analysis.report.render(Some(&case.dist.graph))
                );
                // Deferring is only acceptable because the rest of the
                // pipeline still catches the fault.
                assert!(
                    case.run(&CheckOptions::default()).detected(),
                    "bug {}: deferred by shard pass AND missed downstream",
                    case.id
                );
            }
        }
    }
}

#[test]
fn fixed_cases_have_no_false_positives() {
    for case in all_bugs(false) {
        let analysis = analyze(&case);
        assert!(
            analysis.is_clean(),
            "fixed case {}: shard false positive:\n{}",
            case.id,
            analysis.report.render(Some(&case.dist.graph))
        );
        assert!(
            !case.run(&CheckOptions::default()).detected(),
            "fixed case {}: pipeline regression",
            case.id
        );
    }
}

#[test]
fn buggy_cases_all_detected_with_hints_on_and_off() {
    // The hint machinery must never *mask* a bug: every Table 3 fault is
    // detected under both configurations.
    for case in all_bugs(true) {
        assert!(
            case.run(&CheckOptions::default()).detected(),
            "bug {} undetected with shard hints",
            case.id
        );
        let opts = CheckOptions {
            shard_hints: false,
            ..CheckOptions::default()
        };
        assert!(
            case.run(&opts).detected(),
            "bug {} undetected without shard hints",
            case.id
        );
    }
}
