//! Dynamic validation of the static rule-corpus analysis (`entangle-rules`)
//! against the live engine, over the 7-workload model zoo:
//!
//! 1. the static growth classification predicts saturation behaviour —
//!    no *simplifying* rule ever exhibits the generative blowup signature
//!    (matches vastly exceeding applications) that the throttled drivers
//!    show;
//! 2. the backoff scheduler is verdict-invariant — every zoo case and
//!    every Table 3 bug (buggy and fixed) produces identical relations,
//!    reports, and verdicts with `rule_backoff` on and off.

use std::collections::HashMap;

use entangle::{check_refinement, CheckOptions, CheckOutcome, RefinementError};
use entangle_bench::zoo;
use entangle_parallel::bugs::{all_bugs, BugVerdict};
use entangle_rules::{classify, GrowthClass};

/// The blowup signature the scheduler throttles on: sustained application
/// volume above the per-iteration match budget. A simplifying rule cannot
/// sustain it — every application strictly shrinks the work it feeds on —
/// while the measured MoE generatives accumulate tens of thousands
/// (`scalar_mul-compose` peaks above 30k). The budget is the natural
/// threshold: it is what the scheduler bans drivers against.
const GENERATIVE_THRESHOLD: u64 = 4096;

fn corpus_classes() -> HashMap<String, GrowthClass> {
    entangle_lemmas::registry()
        .iter()
        .map(|l| (l.rewrite.name().to_owned(), classify(&l.rewrite).class))
        .collect()
}

#[test]
fn simplifying_rules_never_show_the_blowup_signature() {
    let classes = corpus_classes();
    let mut some_generative_exceeded = false;
    // Measured against the unthrottled engine: the property validates the
    // *static classification* against raw saturation behaviour, and the
    // scheduler (whose throttle set that classification feeds) tames the
    // MoE generatives below the threshold when left on.
    let opts = CheckOptions {
        rule_backoff: false,
        ..CheckOptions::default()
    };
    for case in zoo() {
        let ri = case.dist.relation(&case.gs).expect("relation builds");
        let outcome = check_refinement(&case.gs, &case.dist.graph, &ri, &opts)
            .unwrap_or_else(|e| panic!("{} failed: {e}", case.name));
        for (rule, stats) in &outcome.saturation.telemetry.rules {
            let class = classes
                .get(rule)
                .unwrap_or_else(|| panic!("{rule} missing from corpus"));
            if stats.applications > GENERATIVE_THRESHOLD {
                some_generative_exceeded = true;
                assert_ne!(
                    *class,
                    GrowthClass::Simplifying,
                    "{}: simplifying rule {rule} shows a generative signature: \
                     {} matches / {} applications",
                    case.name,
                    stats.matches,
                    stats.applications,
                );
            }
        }
    }
    // The threshold must not be vacuous: the MoE generatives sit well
    // above it (scalar_mul-compose measures >30k applications).
    assert!(
        some_generative_exceeded,
        "no rule exceeded the threshold anywhere — the property is vacuous"
    );
}

/// Everything the verdict contract covers: success/failure, both output
/// relations, and the per-operator mapping reports. Saturation telemetry
/// (iteration counts, per-rule match totals) is *expected* to differ with
/// the scheduler on — banning changes the search path, never the fixpoint.
fn verdict_signature(
    gs: &entangle_ir::Graph,
    result: &Result<CheckOutcome, RefinementError>,
) -> String {
    match result {
        Err(e) => format!("FAILED\n{e:?}\n"),
        Ok(o) => {
            let mut out = String::from("VERIFIED\n");
            out.push_str(&o.output_relation.display(gs).to_string());
            out.push_str(&o.full_relation.display(gs).to_string());
            for r in &o.op_reports {
                out.push_str(&format!(
                    "{} mappings={} hinted={}\n",
                    r.name, r.mappings, r.hinted
                ));
            }
            out
        }
    }
}

fn opts(rule_backoff: bool) -> CheckOptions {
    CheckOptions {
        rule_backoff,
        ..CheckOptions::default()
    }
}

#[test]
fn backoff_is_verdict_invariant_on_the_zoo() {
    for case in zoo() {
        let ri = case.dist.relation(&case.gs).expect("relation builds");
        let on = check_refinement(&case.gs, &case.dist.graph, &ri, &opts(true));
        let off = check_refinement(&case.gs, &case.dist.graph, &ri, &opts(false));
        assert_eq!(
            verdict_signature(&case.gs, &on),
            verdict_signature(&case.gs, &off),
            "{}: backoff scheduler changed the verdict",
            case.name
        );
    }
}

#[test]
fn backoff_is_verdict_invariant_on_the_bug_corpus() {
    for case in all_bugs(true).into_iter().chain(all_bugs(false)) {
        let sig = |v: BugVerdict| match v {
            BugVerdict::Clean => "clean".to_owned(),
            BugVerdict::RefinementBug(e) => format!("refinement: {e:?}"),
            BugVerdict::ExpectationBug(e) => format!("expectation: {e:?}"),
        };
        let on = sig(case.run(&opts(true)));
        let off = sig(case.run(&opts(false)));
        assert_eq!(
            on, off,
            "bug {} ({}, buggy={}): backoff scheduler changed the verdict",
            case.id, case.name, case.buggy
        );
    }
}
