//! Mutation proptests for the trusted kernel: random single-step
//! corruptions of a real, kernel-accepted certificate — wrong lemma id,
//! corrupted substitution, truncated chain, shuffled chain — must all be
//! rejected. The base certificate comes from GPT under TP2, so the mutated
//! proofs are the genuine article, not synthetic strawmen.

use std::sync::OnceLock;

use entangle::{check_refinement, CheckOptions};
use entangle_cert::{exprs_eq, Certificate};
use entangle_egraph::{Proof, ProofStep, RecExpr};
use entangle_ir::Graph;
use entangle_lemmas::{registry, rewrites_of};
use entangle_models::{gpt, Arch, ModelConfig};
use entangle_parallel::{parallelize, Strategy};
use entangle_symbolic::SymCtx;
use proptest::prelude::*;

fn base() -> &'static (Graph, Graph, Certificate) {
    static CELL: OnceLock<(Graph, Graph, Certificate)> = OnceLock::new();
    CELL.get_or_init(|| {
        let cfg = ModelConfig::tiny();
        let gs = gpt(&cfg);
        let dist = parallelize(&cfg, Arch::Gpt, &Strategy::tp(2));
        let ri = dist.relation(&gs).expect("relation builds");
        let outcome = check_refinement(&gs, &dist.graph, &ri, &CheckOptions::default())
            .expect("gpt tp2 certifies");
        let cert = outcome.certificate.expect("certificate emitted");
        (gs, dist.graph, cert)
    })
}

fn kernel_rejects(cert: &Certificate) -> bool {
    let (gs, gd, _) = base();
    entangle_cert::verify(cert, gs, gd, &rewrites_of(&registry()), &SymCtx::new()).is_err()
}

/// `(mapping index, step index)` of every top-level [`ProofStep::Rule`].
fn rule_positions(cert: &Certificate, need_subst: bool) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for (m, mc) in cert.mappings.iter().enumerate() {
        for (s, step) in mc.proof.steps.iter().enumerate() {
            if let ProofStep::Rule { subst, .. } = step {
                if !need_subst || !subst.is_empty() {
                    out.push((m, s));
                }
            }
        }
    }
    out
}

/// Deterministic xorshift for building permutations from a proptest seed.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x.max(1);
    x
}

/// Does `steps` still form a well-shaped chain with the same endpoints as
/// `orig`? (Endpoint + adjacency check only; used to discard the rare
/// shuffle that happens to reconstitute a valid chain.)
fn still_chains(steps: &[ProofStep], orig: &[ProofStep]) -> bool {
    exprs_eq(steps[0].before(), orig[0].before())
        && exprs_eq(steps[steps.len() - 1].after(), orig[orig.len() - 1].after())
        && steps
            .windows(2)
            .all(|w| exprs_eq(w[0].after(), w[1].before()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn unknown_lemma_ids_are_rejected(raw in 0usize..10_000, tag in 0u32..1000) {
        let (_, _, cert) = base();
        let rules = rule_positions(cert, false);
        prop_assert!(!rules.is_empty(), "base certificate has rule steps");
        let (m, s) = rules[raw % rules.len()];
        let mut bad = cert.clone();
        if let ProofStep::Rule { name, .. } = &mut bad.mappings[m].proof.steps[s] {
            *name = format!("no-such-lemma-{tag}");
        }
        prop_assert!(kernel_rejects(&bad), "forged lemma id at mapping {m} step {s}");
    }

    #[test]
    fn corrupted_substitutions_are_rejected(raw in 0usize..10_000, bind in 0usize..10_000) {
        let (_, _, cert) = base();
        let rules = rule_positions(cert, true);
        prop_assert!(!rules.is_empty(), "base certificate has rule steps with bindings");
        let (m, s) = rules[raw % rules.len()];
        let mut bad = cert.clone();
        if let ProofStep::Rule { subst, before, after, .. } = &mut bad.mappings[m].proof.steps[s] {
            let k = bind % subst.len();
            // Swap the binding for a different subterm of the step: the
            // kernel re-derives the true bindings by matching and must
            // notice the disagreement.
            let replacement: RecExpr = if exprs_eq(&subst[k].1, after) {
                before.clone()
            } else {
                after.clone()
            };
            prop_assume!(!exprs_eq(&subst[k].1, &replacement));
            subst[k].1 = replacement;
        }
        prop_assert!(kernel_rejects(&bad), "corrupted binding at mapping {m} step {s}");
    }

    #[test]
    fn truncated_chains_are_rejected(raw in 0usize..10_000) {
        let (_, _, cert) = base();
        let nonempty: Vec<usize> = cert
            .mappings
            .iter()
            .enumerate()
            .filter(|(_, mc)| !mc.proof.steps.is_empty())
            .map(|(m, _)| m)
            .collect();
        prop_assert!(!nonempty.is_empty(), "base certificate has nonempty proofs");
        let m = nonempty[raw % nonempty.len()];
        let mut bad = cert.clone();
        let dropped = bad.mappings[m].proof.steps.pop().expect("nonempty");
        // Dropping a reflexive step would leave the chain intact; real
        // chains never contain one, but guard the test against it.
        prop_assume!(!exprs_eq(dropped.before(), dropped.after()));
        prop_assert!(kernel_rejects(&bad), "truncated chain at mapping {m}");
    }

    #[test]
    fn shuffled_chains_are_rejected(raw in 0usize..10_000, seed in 1u64..u64::MAX) {
        let (_, _, cert) = base();
        let multi: Vec<usize> = cert
            .mappings
            .iter()
            .enumerate()
            .filter(|(_, mc)| mc.proof.steps.len() >= 2)
            .map(|(m, _)| m)
            .collect();
        prop_assert!(!multi.is_empty(), "base certificate has multi-step proofs");
        let m = multi[raw % multi.len()];
        let mut bad = cert.clone();
        let steps = &mut bad.mappings[m].proof.steps;
        let mut state = seed;
        for i in (1..steps.len()).rev() {
            let j = (xorshift(&mut state) as usize) % (i + 1);
            steps.swap(i, j);
        }
        // Discard the identity permutation and the (theoretical) shuffle
        // that still chains end to end.
        let orig: &Proof = &cert.mappings[m].proof;
        prop_assume!(!still_chains(steps, &orig.steps));
        prop_assert!(kernel_rejects(&bad), "shuffled chain at mapping {m}");
    }
}
