//! Workspace-level Table 3 check: all nine bugs detected, no false alarms —
//! the §6.2 claim, via the public API.

use entangle::CheckOptions;
use entangle_parallel::bugs::{all_bugs, BugVerdict};

#[test]
fn table3_all_bugs_detected_and_no_false_alarms() {
    let opts = CheckOptions::default();
    for case in all_bugs(true) {
        assert!(
            case.run(&opts).detected(),
            "bug {} ({}) escaped detection",
            case.id,
            case.name
        );
    }
    for case in all_bugs(false) {
        let verdict = case.run(&opts);
        assert!(
            !verdict.detected(),
            "fixed twin of bug {} raised a false alarm: {verdict:?}",
            case.id
        );
    }
}

#[test]
fn refinement_errors_render_actionable_reports() {
    let opts = CheckOptions::default();
    for case in all_bugs(true) {
        let text = match case.run(&opts) {
            BugVerdict::Clean => unreachable!("bug {} must be detected", case.id),
            BugVerdict::RefinementBug(e) => e.to_string(),
            BugVerdict::ExpectationBug(e) => e.to_string(),
        };
        assert!(
            text.len() > 40,
            "bug {} report is too terse: {text}",
            case.id
        );
    }
}
