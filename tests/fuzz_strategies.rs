//! Property-based "strategy fuzzing": random sequential operator chains are
//! distributed by a random (valid) sharding and must verify; the same chains
//! with an injected fault must not. This generalizes the fixed Table 3
//! cases into a generative test of the checker's soundness/usefulness
//! trade-off.

use entangle::{check_refinement, CheckOptions, Relation};
use entangle_ir::{DType, Dim, Graph, GraphBuilder, Op, TensorId};
use proptest::prelude::*;

/// One random elementwise/matmul chain step.
#[derive(Debug, Clone, Copy)]
enum Step {
    Gelu,
    Relu,
    Tanh,
    Sigmoid,
    AddBias,
    MatmulSquare,
    ScaleHalfTwice, // scalar_mul 1/2 then 2/1: clean-neutral computation
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        Just(Step::Gelu),
        Just(Step::Relu),
        Just(Step::Tanh),
        Just(Step::Sigmoid),
        Just(Step::AddBias),
        Just(Step::MatmulSquare),
        Just(Step::ScaleHalfTwice),
    ]
}

const ROWS: i64 = 8;
const COLS: i64 = 4;

/// Builds the sequential chain over an `[ROWS, COLS]` input.
fn build_sequential(steps: &[Step]) -> Graph {
    let mut g = GraphBuilder::new("fuzz-seq");
    let mut x = g.input("x", &[ROWS, COLS], DType::F32);
    for (i, step) in steps.iter().enumerate() {
        x = apply_step(&mut g, &format!("s{i}"), *step, x, |g, name, dims| {
            g.input(name, dims, DType::F32)
        });
    }
    g.mark_output(x);
    g.finish().expect("sequential fuzz graph validates")
}

fn apply_step(
    g: &mut GraphBuilder,
    prefix: &str,
    step: Step,
    x: TensorId,
    mut weight: impl FnMut(&mut GraphBuilder, &str, &[i64]) -> TensorId,
) -> TensorId {
    match step {
        Step::Gelu => g.apply(&format!("{prefix}.gelu"), Op::Gelu, &[x]).unwrap(),
        Step::Relu => g.apply(&format!("{prefix}.relu"), Op::Relu, &[x]).unwrap(),
        Step::Tanh => g.apply(&format!("{prefix}.tanh"), Op::Tanh, &[x]).unwrap(),
        Step::Sigmoid => g
            .apply(&format!("{prefix}.sigmoid"), Op::Sigmoid, &[x])
            .unwrap(),
        Step::AddBias => {
            let b = weight(g, &format!("{prefix}.bias"), &[COLS]);
            g.apply(&format!("{prefix}.addb"), Op::Add, &[x, b])
                .unwrap()
        }
        Step::MatmulSquare => {
            let w = weight(g, &format!("{prefix}.w"), &[COLS, COLS]);
            g.apply(&format!("{prefix}.mm"), Op::Matmul, &[x, w])
                .unwrap()
        }
        Step::ScaleHalfTwice => {
            let half = g
                .apply(
                    &format!("{prefix}.half"),
                    Op::ScalarMul { numer: 1, denom: 2 },
                    &[x],
                )
                .unwrap();
            g.apply(
                &format!("{prefix}.double"),
                Op::ScalarMul { numer: 2, denom: 1 },
                &[half],
            )
            .unwrap()
        }
    }
}

/// Distributes the chain by row-sharding the input across two ranks
/// (sequence-parallel style), replicating the weights, and all-gathering
/// the final output. When `fault` is set, rank 1 silently drops one step —
/// the kind of divergence a misconfiguration produces.
fn build_distributed(steps: &[Step], fault: Option<usize>) -> (Graph, Vec<(String, String)>) {
    let mut g = GraphBuilder::new("fuzz-dist");
    let mut maps = vec![("x".to_owned(), "(concat x.0 x.1 0)".to_owned())];
    let half = ROWS / 2;
    let mut shards: Vec<TensorId> = (0..2)
        .map(|r| g.input(&format!("x.{r}"), &[half, COLS], DType::F32))
        .collect();
    for (i, step) in steps.iter().enumerate() {
        // Weights are shared across ranks (replicated).
        let mut weights: Vec<TensorId> = Vec::new();
        {
            let g = &mut g;
            match step {
                Step::AddBias => {
                    let name = format!("s{i}.bias");
                    let id = g.input(&name, &[COLS], DType::F32);
                    maps.push((name.clone(), name));
                    weights.push(id);
                }
                Step::MatmulSquare => {
                    let name = format!("s{i}.w");
                    let id = g.input(&name, &[COLS, COLS], DType::F32);
                    maps.push((name.clone(), name));
                    weights.push(id);
                }
                _ => {}
            }
        }
        #[allow(clippy::needless_range_loop)] // `r` also names the shards in apply_step
        for r in 0..2 {
            if fault == Some(i) && r == 1 {
                continue; // rank 1 forgets this step entirely
            }
            let mut widx = 0;
            shards[r] = apply_step(
                &mut g,
                &format!("r{r}.s{i}"),
                *step,
                shards[r],
                |_, _, _| {
                    let w = weights[widx];
                    widx += 1;
                    w
                },
            );
        }
    }
    let out = g
        .apply("gathered", Op::AllGather { dim: 0 }, &shards)
        .unwrap();
    g.mark_output(out);
    (g.finish().expect("distributed fuzz graph validates"), maps)
}

fn relation(gs: &Graph, gd: &Graph, maps: &[(String, String)]) -> Relation {
    let mut b = Relation::builder(gs, gd);
    for (name, expr) in maps {
        b.map(name, expr).expect("fuzz maps validate");
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any random chain, correctly sharded, verifies.
    #[test]
    fn correct_shardings_always_verify(steps in proptest::collection::vec(arb_step(), 1..6)) {
        let gs = build_sequential(&steps);
        let (gd, maps) = build_distributed(&steps, None);
        let ri = relation(&gs, &gd, &maps);
        let outcome = check_refinement(&gs, &gd, &ri, &CheckOptions::default())
            .expect("correct sharding must verify");
        prop_assert!(outcome.output_relation.is_complete_for(gs.outputs()));
    }

    /// Dropping a value-changing step on one rank is always detected.
    #[test]
    fn dropped_steps_are_always_detected(
        steps in proptest::collection::vec(arb_step(), 1..6),
        fault_idx in 0usize..6,
    ) {
        // `ScaleHalfTwice` composes to the identity (x·½·2 = x), so dropping
        // it is semantically harmless and the checker *correctly* verifies —
        // fault only value-changing steps.
        let changing: Vec<usize> = steps
            .iter()
            .enumerate()
            .filter(|(_, s)| !matches!(s, Step::ScaleHalfTwice))
            .map(|(i, _)| i)
            .collect();
        prop_assume!(!changing.is_empty());
        let fault = changing[fault_idx % changing.len()];
        let gs = build_sequential(&steps);
        let (gd, maps) = build_distributed(&steps, Some(fault));
        let ri = relation(&gs, &gd, &maps);
        let result = check_refinement(&gs, &gd, &ri, &CheckOptions::default());
        prop_assert!(
            result.is_err(),
            "fault at step {fault} ({:?}) escaped detection",
            steps[fault]
        );
    }
}

#[test]
fn symbolic_dim_rows_also_fuzz() {
    // The same chain shape with a symbolic row count: sharding verifies
    // through the Fourier–Motzkin seam arithmetic.
    let mut ctx = entangle_symbolic::SymCtx::new();
    let n = ctx.var("n");
    ctx.assume(
        n.clone(),
        entangle_symbolic::Rel::Ge,
        entangle_symbolic::SymExpr::constant(1),
    );

    let mut gs = GraphBuilder::new("sym-seq");
    let x = gs.input_shaped(
        "x",
        entangle_ir::Shape(vec![Dim(n.clone() * 2), Dim::from(COLS)]),
        DType::F32,
    );
    let y = gs.apply("gelu", Op::Gelu, &[x]).unwrap();
    let z = gs.apply("tanh", Op::Tanh, &[y]).unwrap();
    gs.mark_output(z);
    let gs = gs.finish().unwrap();

    let mut gd = GraphBuilder::new("sym-dist");
    let shard_shape = entangle_ir::Shape(vec![Dim(n.clone()), Dim::from(COLS)]);
    let x0 = gd.input_shaped("x.0", shard_shape.clone(), DType::F32);
    let x1 = gd.input_shaped("x.1", shard_shape, DType::F32);
    let y0 = gd.apply("gelu.0", Op::Gelu, &[x0]).unwrap();
    let y1 = gd.apply("gelu.1", Op::Gelu, &[x1]).unwrap();
    let z0 = gd.apply("tanh.0", Op::Tanh, &[y0]).unwrap();
    let z1 = gd.apply("tanh.1", Op::Tanh, &[y1]).unwrap();
    gd.mark_output(z0);
    gd.mark_output(z1);
    let gd = gd.finish().unwrap();

    let mut ri = Relation::builder(&gs, &gd);
    ri.map("x", "(concat x.0 x.1 0)").unwrap();
    let opts = CheckOptions {
        sym_ctx: ctx,
        ..CheckOptions::default()
    };
    let outcome = check_refinement(&gs, &gd, &ri.build(), &opts).unwrap();
    assert!(outcome.output_relation.is_complete_for(gs.outputs()));
}
