//! Integration of the JSON interchange format (the §5 foreign-IR bridge)
//! with the checker.

use entangle::{check_refinement, CheckOptions, Relation};
use entangle_ir::Graph;
use entangle_models::{qwen2, Arch, ModelConfig};
use entangle_parallel::{parallelize, Strategy};

#[test]
fn verification_works_on_deserialized_graphs() {
    let cfg = ModelConfig::tiny();
    let gs = qwen2(&cfg);
    let dist = parallelize(&cfg, Arch::Qwen2, &Strategy::tp(2));

    let gs2 = Graph::from_json(&gs.to_json().unwrap()).unwrap();
    let gd2 = Graph::from_json(&dist.graph.to_json().unwrap()).unwrap();

    let mut ri = Relation::builder(&gs2, &gd2);
    for (name, expr) in &dist.input_maps {
        ri.map(name, expr).unwrap();
    }
    let outcome = check_refinement(&gs2, &gd2, &ri.build(), &CheckOptions::default()).unwrap();
    assert!(outcome.output_relation.is_complete_for(gs2.outputs()));
}

#[test]
fn symbolic_shapes_survive_interchange() {
    use entangle_ir::{DType, Dim, GraphBuilder, Op, Shape};
    let mut ctx = entangle_symbolic::SymCtx::new();
    let n = ctx.var("n");
    let mut g = GraphBuilder::new("symbolic");
    let x = g.input_shaped("x", Shape(vec![Dim(n.clone()), Dim::from(4)]), DType::F32);
    let y = g.apply("y", Op::Gelu, &[x]).unwrap();
    g.mark_output(y);
    let graph = g.finish().unwrap();
    let back = Graph::from_json(&graph.to_json().unwrap()).unwrap();
    assert_eq!(back.tensor(y).shape, graph.tensor(y).shape);
}

#[test]
fn malformed_interchange_is_rejected() {
    let cfg = ModelConfig::tiny();
    let gs = qwen2(&cfg);
    let json = gs.to_json().unwrap();
    // Truncation and field corruption both fail closed.
    assert!(Graph::from_json(&json[..json.len() / 2]).is_err());
    let corrupt = json.replacen("\"Matmul\"", "\"Softmax\"", 1);
    assert!(Graph::from_json(&corrupt).is_err());
}

/// A hand-written minimal interchange document, used as the base for the
/// malformed-input tests below.
const TINY_JSON: &str = r#"{
  "name": "tiny",
  "tensors": [
    { "id": 0, "name": "x", "shape": [2, 4], "dtype": "F32", "producer": null },
    { "id": 1, "name": "y", "shape": [2, 4], "dtype": "F32", "producer": 0 }
  ],
  "nodes": [
    { "id": 0, "name": "relu", "op": "Relu", "inputs": [0], "output": 1 }
  ],
  "inputs": [0],
  "outputs": [1]
}"#;

#[test]
fn tiny_document_round_trips() {
    let g = Graph::from_json(TINY_JSON).unwrap();
    let j1 = g.to_json().unwrap();
    let g2 = Graph::from_json(&j1).unwrap();
    assert_eq!(j1, g2.to_json().unwrap(), "encoding is stable");
}

#[test]
fn round_trip_is_stable_across_model_zoo() {
    use entangle_models::{gpt, llama3};
    let cfg = ModelConfig::tiny();
    for (name, g) in [
        ("gpt", gpt(&cfg)),
        ("llama3", llama3(&cfg)),
        ("qwen2", qwen2(&cfg)),
    ] {
        let j1 = g.to_json().unwrap();
        let back = Graph::from_json(&j1).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            j1,
            back.to_json().unwrap(),
            "{name}: round-trip is byte-stable"
        );
        assert_eq!(g.num_nodes(), back.num_nodes());
        assert_eq!(g.num_tensors(), back.num_tensors());
    }
}

#[test]
fn malformed_documents_get_descriptive_errors() {
    // Duplicate tensor name (first "name": "y" is the tensor's).
    let dup = TINY_JSON.replacen("\"name\": \"y\"", "\"name\": \"x\"", 1);
    let err = Graph::from_json(&dup).unwrap_err().to_string();
    assert!(err.contains("duplicate") && err.contains("x"), "{err}");

    // Node input referencing a tensor that does not exist.
    let dangling = TINY_JSON.replace(
        "\"inputs\": [0], \"output\": 1",
        "\"inputs\": [7], \"output\": 1",
    );
    let err = Graph::from_json(&dangling).unwrap_err().to_string();
    assert!(err.contains("out of range"), "{err}");

    // Graph output referencing a tensor that does not exist.
    let bad_out = TINY_JSON.replace("\"outputs\": [1]", "\"outputs\": [9]");
    let err = Graph::from_json(&bad_out).unwrap_err().to_string();
    assert!(err.contains("out of range"), "{err}");

    // Producer pointing at a node that does not exist.
    let bad_prod = TINY_JSON.replace("\"producer\": 0", "\"producer\": 5");
    let err = Graph::from_json(&bad_prod).unwrap_err().to_string();
    assert!(err.contains("out of range"), "{err}");

    // Duplicate JSON keys fail at the parse level.
    let dup_key = TINY_JSON.replace(
        "\"name\": \"tiny\",",
        "\"name\": \"tiny\", \"name\": \"twice\",",
    );
    let err = Graph::from_json(&dup_key).unwrap_err().to_string();
    assert!(err.contains("duplicate object key"), "{err}");
}

#[test]
fn stale_shapes_fail_validation_but_load_for_linting() {
    // Corrupt the *derived* tensor's recorded shape (second occurrence).
    let stale = TINY_JSON.replacen("\"shape\": [2, 4]", "\"shape\": [4, 2]", 2);
    let stale = stale.replacen("\"shape\": [4, 2]", "\"shape\": [2, 4]", 1);
    assert_ne!(stale, TINY_JSON);

    // The validating loader rejects it with a shape diagnosis...
    let err = Graph::from_json(&stale).unwrap_err().to_string();
    assert!(err.contains("shape"), "{err}");

    // ...while the lint loader accepts it and the linter pinpoints it.
    let g = Graph::from_json_unvalidated(&stale).unwrap();
    let report = entangle_lint::lint_graph(&g);
    assert!(!report.is_clean());
    assert!(
        report
            .errors()
            .any(|d| d.code == entangle_lint::codes::SHAPE_MISMATCH),
        "{}",
        report.render(Some(&g))
    );
}
