//! Integration of the JSON interchange format (the §5 foreign-IR bridge)
//! with the checker.

use entangle::{check_refinement, CheckOptions, Relation};
use entangle_ir::Graph;
use entangle_models::{qwen2, Arch, ModelConfig};
use entangle_parallel::{parallelize, Strategy};

#[test]
fn verification_works_on_deserialized_graphs() {
    let cfg = ModelConfig::tiny();
    let gs = qwen2(&cfg);
    let dist = parallelize(&cfg, Arch::Qwen2, &Strategy::tp(2));

    let gs2 = Graph::from_json(&gs.to_json().unwrap()).unwrap();
    let gd2 = Graph::from_json(&dist.graph.to_json().unwrap()).unwrap();

    let mut ri = Relation::builder(&gs2, &gd2);
    for (name, expr) in &dist.input_maps {
        ri.map(name, expr).unwrap();
    }
    let outcome =
        check_refinement(&gs2, &gd2, &ri.build(), &CheckOptions::default()).unwrap();
    assert!(outcome.output_relation.is_complete_for(gs2.outputs()));
}

#[test]
fn symbolic_shapes_survive_interchange() {
    use entangle_ir::{DType, Dim, GraphBuilder, Op, Shape};
    let mut ctx = entangle_symbolic::SymCtx::new();
    let n = ctx.var("n");
    let mut g = GraphBuilder::new("symbolic");
    let x = g.input_shaped("x", Shape(vec![Dim(n.clone()), Dim::from(4)]), DType::F32);
    let y = g.apply("y", Op::Gelu, &[x]).unwrap();
    g.mark_output(y);
    let graph = g.finish().unwrap();
    let back = Graph::from_json(&graph.to_json().unwrap()).unwrap();
    assert_eq!(back.tensor(y).shape, graph.tensor(y).shape);
}

#[test]
fn malformed_interchange_is_rejected() {
    let cfg = ModelConfig::tiny();
    let gs = qwen2(&cfg);
    let json = gs.to_json().unwrap();
    // Truncation and field corruption both fail closed.
    assert!(Graph::from_json(&json[..json.len() / 2]).is_err());
    let corrupt = json.replacen("\"Matmul\"", "\"Softmax\"", 1);
    assert!(Graph::from_json(&corrupt).is_err());
}
