//! Workspace-level integration: zoo models → distribution strategies →
//! refinement checking, exercised entirely through the public API.

use entangle::{check_refinement, CheckOptions};
use entangle_models::{gpt, llama3, qwen2, Arch, ModelConfig};
use entangle_parallel::{parallelize, Distributed, Strategy};

fn check(gs: &entangle_ir::Graph, dist: &Distributed) -> entangle::CheckOutcome {
    let ri = dist.relation(gs).expect("relation builds");
    check_refinement(gs, &dist.graph, &ri, &CheckOptions::default())
        .unwrap_or_else(|e| panic!("{} should refine: {e}", dist.graph.name()))
}

#[test]
fn every_zoo_model_verifies_under_tp2() {
    let cfg = ModelConfig::tiny();
    for (gs, arch) in [
        (gpt(&cfg), Arch::Gpt),
        (llama3(&cfg), Arch::Llama),
        (qwen2(&cfg), Arch::Qwen2),
    ] {
        let dist = parallelize(&cfg, arch, &Strategy::tp(2));
        let outcome = check(&gs, &dist);
        assert!(outcome.output_relation.is_complete_for(gs.outputs()));
        // Every intermediate G_s tensor got a clean mapping too.
        for node in gs.nodes() {
            assert!(
                outcome.full_relation.contains(node.output),
                "{}: no mapping for {}",
                gs.name(),
                node.name
            );
        }
    }
}

#[test]
fn verification_time_grows_with_operator_count() {
    // The Figure 3 correlation, as a coarse integration check: more layers,
    // more per-op reports, more total time.
    let cfg = ModelConfig::tiny();
    let run = |layers: usize| {
        let cfg = cfg.with_layers(layers);
        let gs = gpt(&cfg);
        let dist = parallelize(&cfg, Arch::Gpt, &Strategy::tp(2));
        let start = std::time::Instant::now();
        let outcome = check(&gs, &dist);
        (outcome.op_reports.len(), start.elapsed())
    };
    let (ops1, _t1) = run(1);
    let (ops3, _t3) = run(3);
    assert!(ops3 > 2 * ops1);
}

#[test]
fn lemma_stats_are_collected_per_model() {
    // Lemma application is a saturation-side effect; shard hints skip
    // saturation for hinted operators, so this test pins them off.
    let check = |gs: &entangle_ir::Graph, dist: &Distributed| {
        let ri = dist.relation(gs).expect("relation builds");
        let opts = CheckOptions {
            shard_hints: false,
            ..CheckOptions::default()
        };
        check_refinement(gs, &dist.graph, &ri, &opts)
            .unwrap_or_else(|e| panic!("{} should refine: {e}", dist.graph.name()))
    };
    let cfg = ModelConfig::tiny();
    let gs = llama3(&cfg);
    let dist = parallelize(&cfg, Arch::Llama, &Strategy::tp(2));
    let outcome = check(&gs, &dist);
    // The HLO-category rope lemma family must fire for a rope model.
    let rope_apps: u64 = outcome
        .lemma_stats
        .iter()
        .filter(|(name, _)| name.starts_with("rope"))
        .map(|(_, c)| c)
        .sum();
    assert!(rope_apps > 0, "rope lemmas should be applied for Llama");
    // GPT (no rope op) must not fire rope lemmas.
    let gs = gpt(&cfg);
    let dist = parallelize(&cfg, Arch::Gpt, &Strategy::tp(2));
    let outcome = check(&gs, &dist);
    let rope_apps: u64 = outcome
        .lemma_stats
        .iter()
        .filter(|(name, _)| name.starts_with("rope"))
        .map(|(_, c)| c)
        .sum();
    assert_eq!(rope_apps, 0, "GPT applies no rope lemmas");
}

#[test]
fn wrong_input_relation_is_a_detected_bug() {
    // Swapping weight shards in R_i makes the implementation wrong w.r.t.
    // the stated distribution — the checker must notice.
    let cfg = ModelConfig::tiny();
    let gs = gpt(&cfg);
    let dist = parallelize(&cfg, Arch::Gpt, &Strategy::tp(2));
    let mut ri = entangle::Relation::builder(&gs, &dist.graph);
    for (name, expr) in &dist.input_maps {
        if name == "L0.w2" {
            // Reverse the row shards of the MLP down-projection.
            ri.map(name, "(concat L0.w2.1 L0.w2.0 0)").unwrap();
        } else {
            ri.map(name, expr).unwrap();
        }
    }
    let err = check_refinement(&gs, &dist.graph, &ri.build(), &CheckOptions::default());
    assert!(err.is_err(), "shard swap must break refinement");
}

#[test]
fn strategy_matrix_verifies() {
    // A broad strategy × architecture matrix at degree 2 and 4 — the
    // workspace-level version of the paper's "can be applied to others"
    // claim (§6.1).
    let cfg = ModelConfig {
        seq: 16,
        hidden: 32,
        heads: 8,
        ffn: 64,
        ..ModelConfig::tiny()
    };
    let cases: Vec<(Arch, Strategy)> = vec![
        (Arch::Gpt, Strategy::tp(2)),
        (Arch::Gpt, Strategy::tp_sp(2)),
        (Arch::Gpt, Strategy::tp_sp_vp(4)),
        (Arch::Llama, Strategy::tp(4)),
        (Arch::Llama, Strategy::tp_sp(2)),
        (Arch::Qwen2, Strategy::tp_sp(2)),
    ];
    for (arch, strategy) in cases {
        let gs = match arch {
            Arch::Gpt => gpt(&cfg),
            Arch::Llama => llama3(&cfg),
            Arch::Qwen2 => qwen2(&cfg),
        };
        let dist = parallelize(&cfg, arch, &strategy);
        let ri = dist
            .relation(&gs)
            .unwrap_or_else(|e| panic!("{arch:?}/{strategy:?}: relation failed: {e}"));
        check_refinement(&gs, &dist.graph, &ri, &CheckOptions::default())
            .unwrap_or_else(|e| panic!("{arch:?}/{strategy:?} should refine: {e}"));
    }
}
