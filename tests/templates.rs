//! End-to-end pins for the structural template analysis (`entangle-iso` +
//! the template-lifted saturation memo).
//!
//! Three contracts:
//!
//! 1. **Transparency** — verdicts, output relations and full relations are
//!    bit-identical with templates on and off, across the whole workload
//!    zoo and the Table 3 bug corpus. Template reuse may only remove work,
//!    never change an answer.
//! 2. **Engagement** — on the MoE workload (eight experts re-posing the
//!    same per-expert problems under different slice bounds), the template
//!    memo must actually fire: template hits, certificate-instantiated
//!    replays, fewer concrete solves, and a higher effective hit rate than
//!    the per-operator memo alone.
//! 3. **Determinism at depth** — the new deep-model builders produce
//!    identical outcomes at `jobs` = 1 and 4.

use entangle::{check_refinement, CheckOptions, CheckOutcome, RefinementError};
use entangle_bench::{llama_workload, moe_deep_workload, qwen2_workload, zoo, Workload};
use entangle_parallel::bugs::{all_bugs, BugVerdict};

fn opts(templates: bool) -> CheckOptions {
    CheckOptions {
        templates,
        ..CheckOptions::default()
    }
}

/// Deterministic fingerprint of a check result: verdict, both relations,
/// per-operator reports. Timing and scheduling stats are excluded.
fn signature(gs: &entangle_ir::Graph, result: &Result<CheckOutcome, RefinementError>) -> String {
    match result {
        Err(e) => format!("FAILED\n{e:?}\n"),
        Ok(o) => {
            let mut out = String::from("VERIFIED\n");
            out.push_str(&o.output_relation.display(gs).to_string());
            out.push_str(&o.full_relation.display(gs).to_string());
            for r in &o.op_reports {
                out.push_str(&format!("{} mappings={}\n", r.name, r.mappings));
            }
            out
        }
    }
}

#[test]
fn zoo_verdicts_identical_with_and_without_templates() {
    for case in zoo() {
        let ri = case.dist.relation(&case.gs).expect("relation builds");
        let on = check_refinement(&case.gs, &case.dist.graph, &ri, &opts(true));
        let off = check_refinement(&case.gs, &case.dist.graph, &ri, &opts(false));
        assert_eq!(
            signature(&case.gs, &on),
            signature(&case.gs, &off),
            "{}: verdict differs with templates on vs off",
            case.name
        );
    }
}

#[test]
fn table3_bug_verdicts_identical_with_and_without_templates() {
    for case in all_bugs(true).into_iter().chain(all_bugs(false)) {
        let render = |v: BugVerdict| match v {
            BugVerdict::Clean => "clean".to_owned(),
            BugVerdict::RefinementBug(e) => format!("refinement: {e:?}"),
            BugVerdict::ExpectationBug(e) => format!("expectation: {e:?}"),
        };
        let on = render(case.run(&opts(true)));
        let off = render(case.run(&opts(false)));
        assert_eq!(
            on, off,
            "bug {} ({}, buggy={}): verdict differs with templates on vs off",
            case.id, case.name, case.buggy
        );
    }
}

#[test]
fn moe_templates_engage_and_raise_effective_hit_rate() {
    let case = zoo()
        .into_iter()
        .find(|c| c.name == "moe_tpsp2")
        .expect("moe_tpsp2 is in the workload zoo");
    let ri = case.dist.relation(&case.gs).expect("relation builds");
    let on = check_refinement(&case.gs, &case.dist.graph, &ri, &opts(true))
        .expect("moe_tpsp2 verifies with templates");
    let off = check_refinement(&case.gs, &case.dist.graph, &ri, &opts(false))
        .expect("moe_tpsp2 verifies without templates");

    let p = &on.par;
    assert!(p.templates_enabled, "templates requested but not enabled");
    assert!(p.template_classes > 0, "no repeated classes found in MoE");
    assert!(
        p.template_hits > 0,
        "expected template hits on the repeated per-expert ops, got 0 \
         ({} misses)",
        p.template_misses
    );
    assert!(
        p.template_instantiated > 0,
        "expected certificate-instantiated replays across expert slice \
         bounds, got 0 ({} fallbacks)",
        p.template_fallbacks
    );

    // The per-expert cache-miss fix: the eight experts' gate slices differ
    // only in slice bounds, which defeated the per-operator memo. Template
    // keys parameterize those bounds, so fewer problems are solved from
    // scratch and the effective (concrete + template) hit rate rises.
    assert!(
        p.cache_misses < off.par.cache_misses,
        "templates did not reduce concrete solves: {} on vs {} off",
        p.cache_misses,
        off.par.cache_misses
    );
    let effective = (p.cache_hits + p.template_hits) as f64
        / (p.cache_hits + p.template_hits + p.cache_misses) as f64;
    assert!(
        effective > off.par.hit_rate(),
        "effective hit rate did not improve: {effective:.3} on vs {:.3} off",
        off.par.hit_rate()
    );

    // Transparency on this workload specifically (certificates included via
    // the default certify=true options).
    assert_eq!(
        on.full_relation.display(&case.gs).to_string(),
        off.full_relation.display(&case.gs).to_string(),
        "moe_tpsp2: relation differs with templates on vs off"
    );
}

#[test]
fn deep_builders_deterministic_across_jobs() {
    let deep: [Workload; 3] = [
        llama_workload(8, 8),
        qwen2_workload(8, 8),
        moe_deep_workload(2, 2),
    ];
    for w in &deep {
        let ri = w.dist.relation(&w.gs).expect("relation builds");
        let mut baseline: Option<String> = None;
        for jobs in [1usize, 4] {
            let o = check_refinement(
                &w.gs,
                &w.dist.graph,
                &ri,
                &CheckOptions {
                    jobs,
                    ..CheckOptions::default()
                },
            );
            let sig = signature(&w.gs, &o);
            match &baseline {
                None => baseline = Some(sig),
                Some(s0) => assert_eq!(
                    s0, &sig,
                    "{}: outcome differs between jobs=1 and jobs={jobs}",
                    w.name
                ),
            }
        }
    }
}
