//! Regression pin for the MoE/TP-SP2 saturation outlier.
//!
//! `entangle trace moe-tpsp2` showed the per-expert gate slices and the
//! expert-weighted sums dominating the check: `scalar_mul-distribute` and
//! `scalar_mul-compose` re-found ~1.3M cumulative matches across 12
//! iterations while only ~33k applications changed the e-graph, because the
//! standard egg schedule re-discovers (and re-applies, as an expensive
//! no-op) every prior match each iteration. The cross-iteration apply-dedup
//! memo plus the cross-operator saturation cache brought the heaviest
//! operator from ~250 ms to under 200 ms (release). This test pins that:
//! with the cache enabled, no single MoE operator may spend 500 ms or more
//! in saturation again.
//!
//! Timing is asserted only in release builds — debug builds are ~10x
//! slower and would make the bound meaningless — but the structural
//! assertions (verdict, cache activity, no time-limit stops) always run.

use entangle::{check_refinement, CheckOptions};
use entangle_bench::zoo;
use entangle_egraph::StopReason;

#[test]
fn moe_per_op_saturation_stays_under_500ms_with_cache() {
    let case = zoo()
        .into_iter()
        .find(|c| c.name == "moe_tpsp2")
        .expect("moe_tpsp2 is in the workload zoo");
    let ri = case.dist.relation(&case.gs).expect("relation builds");
    let opts = CheckOptions {
        cache: true,
        ..CheckOptions::default()
    };
    let outcome =
        check_refinement(&case.gs, &case.dist.graph, &ri, &opts).expect("moe_tpsp2 verifies");

    // The cross-operator cache must actually engage: the eight experts
    // share gate-projection / activation / down-projection structure.
    let par = &outcome.par;
    assert!(par.cache_enabled, "cache was requested but not enabled");
    assert!(
        par.cache_hits > 0,
        "expected cross-operator cache hits on the repeated expert ops, got 0 \
         ({} misses)",
        par.cache_misses
    );

    // No operator may fall into the 10 s time-limit backstop.
    for r in &outcome.op_reports {
        assert_ne!(
            r.stop,
            Some(StopReason::TimeLimit),
            "operator {} hit the saturation time limit",
            r.name
        );
    }

    // The actual perf pin, release builds only.
    if !cfg!(debug_assertions) {
        let mut worst: Option<&entangle::OpReport> = None;
        for r in &outcome.op_reports {
            if worst.is_none_or(|w| r.elapsed > w.elapsed) {
                worst = Some(r);
            }
        }
        let worst = worst.expect("op reports are non-empty");
        assert!(
            worst.elapsed < std::time::Duration::from_millis(500),
            "MoE per-op saturation regressed: {} took {:?} (budget 500 ms); \
             check the apply-dedup memo and the cross-operator cache",
            worst.name,
            worst.elapsed
        );
    }
}
