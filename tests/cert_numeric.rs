//! Numeric replay of refinement certificates: every mapping the trusted
//! kernel accepted is evaluated through `entangle-runtime` on seeded
//! concrete inputs and compared against the sequential model's output.
//!
//! Shardings that never split a contraction dimension (relu over row
//! shards, column-sharded matmul) reassociate no floating-point sums, so
//! the reconstruction must be *bit-identical* to `G_s`. The zoo workload
//! reduces partial sums in a different order and is held to `allclose`.

use std::collections::HashMap;

use entangle::{check_refinement, CheckOptions};
use entangle_cert::Certificate;
use entangle_egraph::{ENode, Id, RecExpr};
use entangle_ir::{DType, Graph, GraphBuilder, Op, TensorId};
use entangle_models::{gpt, Arch, ModelConfig};
use entangle_parallel::{parallelize, Strategy};
use entangle_runtime::{eval_graph, eval_op, random_ids, random_value, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Evaluates a clean expression over `G_d` tensor names given `G_d`'s env.
fn eval_expr(expr: &RecExpr, gd: &Graph, env: &HashMap<TensorId, Value>) -> Value {
    let mut vals: Vec<Value> = Vec::with_capacity(expr.len());
    for node in expr.nodes() {
        let v = match node {
            ENode::Int(i) => Value::scalar(*i as f64),
            ENode::Sym(_) => unreachable!("concrete graphs"),
            ENode::Op(sym, ch) if ch.is_empty() => {
                let t = gd.tensor_by_name(sym.as_str()).expect("leaf exists");
                env[&t.id].clone()
            }
            ENode::Op(sym, ch) => {
                let metas: Vec<entangle_lemmas::Meta> = ch
                    .iter()
                    .map(|c| meta_of(&vals[c.index()], expr, *c))
                    .collect();
                let (op, tcount) =
                    entangle_lemmas::decode_op(sym.as_str(), &metas).expect("known op");
                let inputs: Vec<&Value> = ch[..tcount].iter().map(|c| &vals[c.index()]).collect();
                eval_op(&op, &inputs).expect("clean expr evaluates")
            }
        };
        vals.push(v);
    }
    vals.last().expect("non-empty").clone()
}

fn meta_of(val: &Value, expr: &RecExpr, id: Id) -> entangle_lemmas::Meta {
    match expr.node(id) {
        ENode::Int(i) => entangle_lemmas::Meta::scalar(entangle_symbolic::SymExpr::constant(*i)),
        _ => entangle_lemmas::Meta::tensor(
            entangle_ir::Shape::of(&val.shape().iter().map(|&d| d as i64).collect::<Vec<_>>()),
            DType::F32,
        ),
    }
}

/// Certifies the refinement and replays every certified mapping: the
/// mapping's expression over `G_d`'s env must reproduce the `G_s` tensor it
/// claims, bit-for-bit when `exact` and within `1e-6` otherwise.
fn replay_certificate(
    gs: &Graph,
    gd: &Graph,
    cert: &Certificate,
    gs_env: &HashMap<TensorId, Value>,
    gd_env: &HashMap<TensorId, Value>,
    exact: bool,
) {
    assert!(!cert.mappings.is_empty(), "certificate has mappings");
    for mc in &cert.mappings {
        let t = gs.tensor_by_name(&mc.tensor).expect("certified G_s tensor");
        let expected = &gs_env[&t.id];
        let reconstructed = eval_expr(&mc.expr, gd, gd_env);
        if exact {
            assert_eq!(
                reconstructed.shape(),
                expected.shape(),
                "{}: shape mismatch",
                mc.tensor
            );
            assert_eq!(
                reconstructed.data(),
                expected.data(),
                "{}: certified mapping {} is not bit-identical",
                mc.tensor,
                mc.expr
            );
        } else {
            assert!(
                reconstructed.allclose(expected, 1e-6),
                "{}: certified mapping {} differs (max diff {:?})",
                mc.tensor,
                mc.expr,
                reconstructed.max_abs_diff(expected)
            );
        }
    }
    // The output relation entries replay too.
    for (name, expr) in &cert.outputs {
        let t = gs.tensor_by_name(name).expect("certified output");
        let reconstructed = eval_expr(expr, gd, gd_env);
        let expected = &gs_env[&t.id];
        if exact {
            assert_eq!(reconstructed.data(), expected.data(), "output {name}");
        } else {
            assert!(reconstructed.allclose(expected, 1e-6), "output {name}");
        }
    }
}

fn certify(gs: &Graph, gd: &Graph, ri: entangle::Relation) -> Certificate {
    let outcome = check_refinement(gs, gd, &ri, &CheckOptions::default())
        .unwrap_or_else(|e| panic!("{} should certify: {e}", gd.name()));
    outcome
        .certificate
        .expect("certify mode emits a certificate")
}

#[test]
fn certified_relu_sharding_replays_bit_exactly() {
    let mut b = GraphBuilder::new("seq");
    let x = b.input("x", &[4, 4], DType::F32);
    let y = b.apply("y", Op::Relu, &[x]).unwrap();
    b.mark_output(y);
    let gs = b.finish().unwrap();

    let mut b = GraphBuilder::new("dist");
    let x0 = b.input("x0", &[2, 4], DType::F32);
    let x1 = b.input("x1", &[2, 4], DType::F32);
    let y0 = b.apply("y0", Op::Relu, &[x0]).unwrap();
    let y1 = b.apply("y1", Op::Relu, &[x1]).unwrap();
    b.mark_output(y0);
    b.mark_output(y1);
    let gd = b.finish().unwrap();

    let mut ri = entangle::Relation::builder(&gs, &gd);
    ri.map("x", "(concat x0 x1 0)").unwrap();
    let cert = certify(&gs, &gd, ri.build());

    let mut rng = StdRng::seed_from_u64(41);
    let full = random_value(&mut rng, &[4, 4]);
    let shard = |lo: usize, hi: usize| {
        Value::new(vec![2, 4], full.data()[lo * 4..hi * 4].to_vec()).unwrap()
    };
    let gd_in = HashMap::from([(x0, shard(0, 2)), (x1, shard(2, 4))]);
    let gs_env = eval_graph(&gs, &HashMap::from([(x, full)])).unwrap();
    let gd_env = eval_graph(&gd, &gd_in).unwrap();
    replay_certificate(&gs, &gd, &cert, &gs_env, &gd_env, true);
}

#[test]
fn certified_column_matmul_replays_bit_exactly() {
    // Column-sharding the weight splits no contraction dimension: each
    // output element is the same dot product in the same order, so the
    // certified concat reconstruction must be bit-identical.
    let mut b = GraphBuilder::new("seq");
    let x = b.input("x", &[4, 6], DType::F32);
    let w = b.input("w", &[6, 8], DType::F32);
    let y = b.apply("y", Op::Matmul, &[x, w]).unwrap();
    b.mark_output(y);
    let gs = b.finish().unwrap();

    let mut b = GraphBuilder::new("dist");
    let xd = b.input("xd", &[4, 6], DType::F32);
    let w0 = b.input("w0", &[6, 4], DType::F32);
    let w1 = b.input("w1", &[6, 4], DType::F32);
    let y0 = b.apply("y0", Op::Matmul, &[xd, w0]).unwrap();
    let y1 = b.apply("y1", Op::Matmul, &[xd, w1]).unwrap();
    b.mark_output(y0);
    b.mark_output(y1);
    let gd = b.finish().unwrap();

    let mut ri = entangle::Relation::builder(&gs, &gd);
    ri.map("x", "xd").unwrap();
    ri.map("w", "(concat w0 w1 1)").unwrap();
    let cert = certify(&gs, &gd, ri.build());

    let mut rng = StdRng::seed_from_u64(43);
    let xv = random_value(&mut rng, &[4, 6]);
    let wv = random_value(&mut rng, &[6, 8]);
    let col = |lo: i64, hi: i64| {
        eval_op(
            &Op::Slice {
                dim: 1,
                start: lo.into(),
                end: hi.into(),
            },
            &[&wv],
        )
        .unwrap()
    };
    let gd_in = HashMap::from([(xd, xv.clone()), (w0, col(0, 4)), (w1, col(4, 8))]);
    let gs_env = eval_graph(&gs, &HashMap::from([(x, xv), (w, wv)])).unwrap();
    let gd_env = eval_graph(&gd, &gd_in).unwrap();
    replay_certificate(&gs, &gd, &cert, &gs_env, &gd_env, true);
}

// ----- zoo workload: GPT under TP2 (partial-sum reductions ⇒ allclose) -----

fn split_by_map(
    gd: &Graph,
    expr: &RecExpr,
    id: Id,
    val: &Value,
    out: &mut HashMap<TensorId, Value>,
) {
    match expr.node(id) {
        ENode::Op(sym, ch) if ch.is_empty() => {
            let t = gd.tensor_by_name(sym.as_str()).expect("leaf exists");
            out.insert(t.id, val.clone());
        }
        ENode::Op(sym, ch) if sym.as_str() == "concat" => {
            let dim = expr.node(ch[2]).as_int().expect("concrete concat dim") as usize;
            let left = subtree_dim_size(gd, expr, ch[0], dim);
            let n = val.shape()[dim];
            let slice = |lo: usize, hi: usize| {
                eval_op(
                    &Op::Slice {
                        dim,
                        start: (lo as i64).into(),
                        end: (hi as i64).into(),
                    },
                    &[val],
                )
                .unwrap()
            };
            split_by_map(gd, expr, ch[0], &slice(0, left), out);
            split_by_map(gd, expr, ch[1], &slice(left, n), out);
        }
        other => panic!("unsupported input-map node {other:?}"),
    }
}

fn subtree_dim_size(gd: &Graph, expr: &RecExpr, id: Id, dim: usize) -> usize {
    match expr.node(id) {
        ENode::Op(sym, ch) if ch.is_empty() => gd
            .tensor_by_name(sym.as_str())
            .unwrap()
            .shape
            .dim(dim)
            .as_const()
            .unwrap() as usize,
        ENode::Op(_, ch) => {
            subtree_dim_size(gd, expr, ch[0], dim) + subtree_dim_size(gd, expr, ch[1], dim)
        }
        _ => unreachable!(),
    }
}

#[test]
fn certified_gpt_tp2_mappings_replay_numerically() {
    let cfg = ModelConfig::tiny();
    let gs = gpt(&cfg);
    let dist = parallelize(&cfg, Arch::Gpt, &Strategy::tp(2));
    let ri = dist.relation(&gs).expect("relation builds");
    let outcome = check_refinement(&gs, &dist.graph, &ri, &CheckOptions::default())
        .expect("gpt tp2 certifies");
    let cert = outcome.certificate.expect("certificate emitted");

    let mut rng = StdRng::seed_from_u64(17);
    let mut gs_in = HashMap::new();
    for &i in gs.inputs() {
        let t = gs.tensor(i);
        let dims: Vec<usize> = t
            .shape
            .as_concrete()
            .unwrap()
            .iter()
            .map(|&d| d as usize)
            .collect();
        let v = match t.dtype {
            DType::I64 => random_ids(&mut rng, &dims, 8),
            _ => random_value(&mut rng, &dims),
        };
        gs_in.insert(i, v);
    }
    let mut gd_in = HashMap::new();
    for (gs_name, expr) in &dist.input_maps {
        let gs_t = gs.tensor_by_name(gs_name).unwrap();
        let parsed: RecExpr = expr.parse().unwrap();
        split_by_map(
            &dist.graph,
            &parsed,
            parsed.root_id(),
            &gs_in[&gs_t.id],
            &mut gd_in,
        );
    }
    let gs_env = eval_graph(&gs, &gs_in).unwrap();
    let gd_env = eval_graph(&dist.graph, &gd_in).unwrap();
    replay_certificate(&gs, &dist.graph, &cert, &gs_env, &gd_env, false);
}
