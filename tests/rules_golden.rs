//! Golden stable-output test for the rule-corpus analyzer: the exact JSON
//! `entangle rules --json` prints for the shipped corpus is checked in at
//! `tests/golden/rules.json`. Any corpus change — a new rule, a class
//! flip, a new RL diagnostic, a throttle-set change — shows up as a diff
//! here and must be reviewed deliberately.
//!
//! Regenerate after an intentional change with:
//! `UPDATE_GOLDEN=1 cargo test --test rules_golden`

use entangle_rules::{analyze, GrowthClass};

fn corpus_json() -> String {
    let rewrites: Vec<_> = entangle_lemmas::registry()
        .into_iter()
        .map(|l| l.rewrite)
        .collect();
    let mut json = analyze(&rewrites).to_json();
    json.push('\n');
    json
}

#[test]
fn corpus_analysis_matches_golden() {
    let got = corpus_json();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/rules.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &got).expect("golden written");
        return;
    }
    let want = std::fs::read_to_string(path).expect(
        "tests/golden/rules.json missing — run UPDATE_GOLDEN=1 cargo test --test rules_golden",
    );
    assert_eq!(
        got, want,
        "rule-corpus analysis drifted from the golden; if intentional, \
         regenerate with UPDATE_GOLDEN=1 cargo test --test rules_golden"
    );
}

#[test]
fn corpus_analysis_is_deterministic() {
    assert_eq!(corpus_json(), corpus_json());
}

#[test]
fn corpus_headline_facts() {
    let rewrites: Vec<_> = entangle_lemmas::registry()
        .into_iter()
        .map(|l| l.rewrite)
        .collect();
    let analysis = analyze(&rewrites);
    assert_eq!(analysis.classes.len(), 136);
    assert_eq!(analysis.count(GrowthClass::Simplifying), 16);
    assert_eq!(analysis.count(GrowthClass::SizePreserving), 60);
    assert_eq!(analysis.count(GrowthClass::Generative), 60);
    assert_eq!(analysis.cycles.len(), 2, "two generative cycles");
    assert_eq!(
        analysis.throttled,
        vec![
            "embedding-of-concat-ids",
            "scalar_mul-distribute",
            "scalar_mul-of-concat",
            "sum_dim-of-concat-same",
        ],
        "the throttle set is exactly the cycle drivers"
    );
    assert_eq!(
        analysis.report.error_count(),
        0,
        "zero RL errors on the shipped corpus"
    );
    assert!(analysis.report.is_clean());
}
