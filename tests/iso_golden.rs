//! Golden stable-output test for the graph-template analysis: the exact
//! JSON `entangle iso --json` prints for each zoo distributed graph is
//! checked in under `tests/golden/iso/`. Any partition change — a class
//! splitting or merging, a fingerprint drift, a new IS diagnostic — shows
//! up as a diff here and must be reviewed deliberately.
//!
//! Regenerate after an intentional change with:
//! `UPDATE_GOLDEN=1 cargo test --test iso_golden`

use entangle_bench::zoo;

fn case_json(g: &entangle_ir::Graph) -> String {
    let mut json = entangle_iso::analyze(g).to_json(g);
    json.push('\n');
    json
}

#[test]
fn zoo_partitions_match_golden() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/iso");
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    if update {
        std::fs::create_dir_all(dir).expect("golden dir");
    }
    for case in zoo() {
        let got = case_json(&case.dist.graph);
        let path = format!("{dir}/{}.json", case.name);
        if update {
            std::fs::write(&path, &got).expect("golden written");
            continue;
        }
        let want = std::fs::read_to_string(&path).unwrap_or_else(|_| {
            panic!("{path} missing — run UPDATE_GOLDEN=1 cargo test --test iso_golden")
        });
        assert_eq!(
            got, want,
            "{}: template partition drifted from the golden; if intentional, \
             regenerate with UPDATE_GOLDEN=1 cargo test --test iso_golden",
            case.name
        );
    }
}

#[test]
fn zoo_partitions_are_deterministic() {
    for case in zoo() {
        assert_eq!(
            case_json(&case.dist.graph),
            case_json(&case.dist.graph),
            "{}: analysis output is not deterministic",
            case.name
        );
    }
}

#[test]
fn zoo_partitions_are_clean_and_cover_repetition() {
    // No zoo graph may produce IS## *errors* (the CI sweep pins exit 0),
    // and every distributed graph has repeated structure to find.
    for case in zoo() {
        let analysis = entangle_iso::analyze(&case.dist.graph);
        assert_eq!(
            analysis.report.error_count(),
            0,
            "{}: unexpected IS errors",
            case.name
        );
        assert!(
            analysis.class_count() > 0,
            "{}: no repeated template classes found",
            case.name
        );
    }
}
