//! CI gate: the lemma-corpus soundness audit over the full registry.
//!
//! Every lemma the checker saturates with is exercised on ground seed
//! expressions, shape-checked, and numerically validated through the
//! runtime interpreter on random tensors. A single unsound lemma makes
//! every "verified" certificate worthless, so this runs in the default
//! test suite, not an optional binary.

use entangle_lemmas::registry;
use entangle_lint::{audit_lemmas, audit_registry, codes, AuditOptions};

#[test]
fn full_registry_audit_is_clean() {
    let report = audit_registry(&AuditOptions::default());
    assert!(
        report.is_clean(),
        "lemma corpus failed its soundness audit:\n{}",
        report.render()
    );
    // The seed corpus must actually exercise the registry: every lemma
    // fires at least once, and a healthy share reaches the numeric stage.
    let uncovered: Vec<&str> = report
        .entries
        .iter()
        .filter(|e| e.matches == 0)
        .map(|e| e.name.as_str())
        .collect();
    assert!(uncovered.is_empty(), "uncovered lemmas: {uncovered:?}");
    assert!(
        report.numeric_checked() > 50,
        "only {} numeric validations ran",
        report.numeric_checked()
    );
}

#[test]
fn audit_catches_an_intentionally_broken_lemma() {
    // Plant a plausible-looking but wrong lemma in a copy of the registry:
    // dropping one concat operand type-checks in many uses but changes both
    // the shape and the values.
    let mut lemmas = registry();
    let mut broken = lemmas[0].clone();
    broken.name = "intentionally-broken".to_owned();
    broken.rewrite =
        entangle_egraph::Rewrite::parse("intentionally-broken", "(concat ?a ?b 0)", "?a").unwrap();
    lemmas.push(broken);

    let report = audit_lemmas(&lemmas, &AuditOptions::default());
    assert!(!report.is_clean());
    let flagged: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.severity == entangle_lint::Severity::Error)
        .collect();
    assert!(
        flagged.iter().all(|d| matches!(
            &d.anchor,
            entangle_lint::Anchor::Lemma(name) if name == "intentionally-broken"
        )),
        "only the planted lemma may be flagged: {}",
        report.render()
    );
    assert!(
        flagged.iter().any(|d| d.code == codes::LEMMA_SHAPE_UNSOUND),
        "{}",
        report.render()
    );
}
